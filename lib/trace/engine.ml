(* Each attached sink lives in a slot so a sink that raises can be
   quarantined — taken out of the dispatch path with its exception
   recorded — without disturbing sibling sinks. *)
type slot = {
  sink : Sink.t;
  mutable events_seen : int;
  mutable failure : string option;
}

type t = {
  state : Pmem.State.t;
  mutable slots_rev : slot list; (* reverse attach order: O(1) attach *)
  mutable active : slot array; (* dispatch cache, attach order, healthy only *)
  mutable active_dirty : bool;
  mutable instrument : bool;
  mutable metrics : Obs.Metrics.t;
  mutable flightrec : Obs.Flightrec.t;
  mutable tid : int;
  mutable seq : int;
  mutable n_stores : int;
  mutable n_clfs : int;
  mutable n_fences : int;
  mutable n_other : int;
}

let create ?initial_size ?(metrics = Obs.Metrics.disabled) ?(flightrec = Obs.Flightrec.disabled) () =
  {
    state = Pmem.State.create ?initial_size ();
    slots_rev = [];
    active = [||];
    active_dirty = false;
    instrument = true;
    metrics;
    flightrec;
    tid = 0;
    seq = 0;
    n_stores = 0;
    n_clfs = 0;
    n_fences = 0;
    n_other = 0;
  }

let pm t = t.state

let attach t sink =
  t.slots_rev <- { sink; events_seen = 0; failure = None } :: t.slots_rev;
  t.active_dirty <- true

let detach_all t =
  t.slots_rev <- [];
  t.active <- [||];
  t.active_dirty <- false

let slots_in_order t = List.rev t.slots_rev

let sinks t = List.map (fun s -> s.sink) (slots_in_order t)

let refresh_active t =
  t.active <- Array.of_list (List.filter (fun s -> s.failure = None) (slots_in_order t));
  t.active_dirty <- false

let quarantine_msg t slot msg =
  slot.failure <- Some msg;
  Obs.Metrics.inc t.metrics ~labels:[ ("sink", slot.sink.Sink.name) ] "engine_sinks_quarantined_total";
  if Obs.Flightrec.is_on t.flightrec then
    Obs.Flightrec.record t.flightrec ~ts:(float_of_int t.seq) ~cat:"quarantine"
      ~name:slot.sink.Sink.name ~a:t.seq ~b:0;
  t.active_dirty <- true

let quarantine t slot exn = quarantine_msg t slot (Printexc.to_string exn)

let quarantined t =
  List.filter_map
    (fun s -> match s.failure with Some msg -> Some (s.sink.Sink.name, msg) | None -> None)
    (slots_in_order t)

let set_instrumentation t b = t.instrument <- b

let metrics t = t.metrics

let set_metrics t m = t.metrics <- m

let flightrec t = t.flightrec

let set_flightrec t r = t.flightrec <- r

let seq t = t.seq

let set_tid t tid = t.tid <- tid

let run_sinks t slots ev =
  for i = 0 to Array.length slots - 1 do
    let slot = slots.(i) in
    if slot.failure = None then begin
      match slot.sink.Sink.on_event ev with
      | () -> slot.events_seen <- slot.events_seen + 1
      | exception exn -> quarantine t slot exn
    end
  done

let dispatch t ev =
  t.seq <- t.seq + 1;
  (match ev with
  | Event.Store _ -> t.n_stores <- t.n_stores + 1
  | Event.Clf _ -> t.n_clfs <- t.n_clfs + 1
  | Event.Fence _ -> t.n_fences <- t.n_fences + 1
  | _ -> t.n_other <- t.n_other + 1);
  if t.instrument then begin
    if t.active_dirty then refresh_active t;
    let slots = t.active in
    (* Hot path: disabled flight recorder and metrics cost one branch
       each. The recorder timestamps with virtual seq time, so replay
       dumps are deterministic. *)
    if Obs.Flightrec.is_on t.flightrec then
      Obs.Flightrec.record t.flightrec ~ts:(float_of_int t.seq) ~cat:"dispatch"
        ~name:(Event.class_name ev) ~a:t.seq
        ~b:(match ev with Event.Store { addr; _ } | Event.Clf { addr; _ } -> addr | _ -> 0);
    if not (Obs.Metrics.is_on t.metrics) then run_sinks t slots ev
    else begin
      let labels = [ ("class", Event.class_name ev) ] in
      Obs.Metrics.inc t.metrics ~labels "engine_events_total";
      let t0 = Unix.gettimeofday () in
      run_sinks t slots ev;
      Obs.Metrics.observe t.metrics ~labels "engine_dispatch_seconds" (Unix.gettimeofday () -. t0)
    end
  end

(* A sink whose [finish] raises is quarantined exactly like one whose
   [on_event] raises — failure recorded, metric bumped, dispatch cache
   invalidated — and yields an empty report, so one bad sink can never
   abort the drain of its siblings. A sink already quarantined mid-run
   keeps its original failure message. *)
let finish_slot t slot =
  let base =
    match slot.sink.Sink.finish () with
    | report -> report
    | exception exn ->
        if slot.failure = None then
          quarantine_msg t slot (Printf.sprintf "finish raised: %s" (Printexc.to_string exn));
        { (Bug.empty_report slot.sink.Sink.name) with Bug.events_processed = slot.events_seen }
  in
  match slot.failure with None -> base | Some msg -> { base with Bug.failure = Some msg }

let finish_all t = List.map (finish_slot t) (slots_in_order t)

let emit = dispatch

let store_bytes t ~addr b =
  Pmem.State.store t.state ~addr b;
  dispatch t (Event.Store { addr; size = Bytes.length b; tid = t.tid })

let store_i64 t ~addr v =
  Pmem.State.store_i64 t.state ~addr v;
  dispatch t (Event.Store { addr; size = 8; tid = t.tid })

let store_int t ~addr v = store_i64 t ~addr (Int64.of_int v)

let store_u8 t ~addr v =
  let b = Bytes.make 1 (Char.chr (v land 0xff)) in
  store_bytes t ~addr b

let store_string t ~addr s = store_bytes t ~addr (Bytes.of_string s)

let clf_with t kind ~addr ~size =
  Pmem.State.clf t.state ~addr;
  dispatch t (Event.Clf { addr = Pmem.Addr.line_base addr; size; kind; tid = t.tid })

let clwb t ~addr = clf_with t Event.Clwb ~addr ~size:Pmem.Addr.cache_line_size

let clflush t ~addr = clf_with t Event.Clflush ~addr ~size:Pmem.Addr.cache_line_size

let clflushopt t ~addr = clf_with t Event.Clflushopt ~addr ~size:Pmem.Addr.cache_line_size

let flush_range t ~addr ~size =
  List.iter
    (fun line -> clwb t ~addr:(line * Pmem.Addr.cache_line_size))
    (Pmem.Addr.lines_of_range ~lo:addr ~hi:(addr + size))

let sfence t =
  Pmem.State.fence t.state;
  dispatch t (Event.Fence { tid = t.tid })

let persist t ~addr ~size =
  flush_range t ~addr ~size;
  sfence t

let load_i64 t ~addr = Pmem.Image.get_i64 (Pmem.State.volatile t.state) addr

let load_int t ~addr = Pmem.Image.get_int (Pmem.State.volatile t.state) addr

let load_u8 t ~addr = Pmem.Image.get_u8 (Pmem.State.volatile t.state) addr

let load_string t ~addr ~len = Pmem.Image.get_string (Pmem.State.volatile t.state) ~addr ~len

let load_bytes t ~addr ~len = Pmem.Image.read (Pmem.State.volatile t.state) ~addr ~len

let register_pmem t ~base ~size = dispatch t (Event.Register_pmem { base; size })

let epoch_begin t = dispatch t (Event.Epoch_begin { tid = t.tid })

let epoch_end t = dispatch t (Event.Epoch_end { tid = t.tid })

let strand_begin t ~strand = dispatch t (Event.Strand_begin { tid = t.tid; strand })

let strand_end t ~strand = dispatch t (Event.Strand_end { tid = t.tid; strand })

let join_strand t = dispatch t (Event.Join_strand { tid = t.tid })

let tx_log t ~obj_addr ~size = dispatch t (Event.Tx_log { obj_addr; size; tid = t.tid })

let register_var t ~name ~addr ~size = dispatch t (Event.Register_var { name; addr; size })

let call_marker t ~func = dispatch t (Event.Call { func; tid = t.tid })

let annotate t a = dispatch t (Event.Annotation a)

let program_end t = dispatch t Event.Program_end

let counts t =
  [ ("stores", t.n_stores); ("clfs", t.n_clfs); ("fences", t.n_fences); ("other", t.n_other) ]

let n_stores t = t.n_stores

let n_clfs t = t.n_clfs

let n_fences t = t.n_fences
