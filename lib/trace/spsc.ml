(* Bounded single-producer / single-consumer ring on OCaml Domains.

   The router (one producer) feeds each shard worker (one consumer)
   through one of these. Publication protocol: the producer writes the
   element into the ring plainly, then bumps [tail] with a sequentially
   consistent atomic store — the consumer's atomic read of [tail]
   therefore happens-after the element write. Symmetrically the
   consumer clears the cell before bumping [head]. Each side caches the
   other side's index and refreshes it only on apparent full/empty, so
   the steady-state cost is two plain array accesses and one atomic
   store per element.

   Blocking uses an adaptive backoff: a bounded [cpu_relax] spin first,
   then short sleeps. The sleep tier matters on machines with fewer
   cores than domains (including single-core CI hosts), where a pure
   spin would steal the timeslice the opposite side needs to make
   progress. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t; (* next index to pop; written by the consumer only *)
  tail : int Atomic.t; (* next index to fill; written by the producer only *)
  mutable cached_head : int; (* producer's view of [head] *)
  mutable cached_tail : int; (* consumer's view of [tail] *)
}

let create ~capacity =
  let cap = max 2 capacity in
  (* Round up to a power of two so index wrap is a mask. *)
  let rec pow2 n = if n >= cap then n else pow2 (n * 2) in
  let n = pow2 2 in
  {
    buf = Array.make n None;
    mask = n - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    cached_head = 0;
    cached_tail = 0;
  }

let capacity t = t.mask + 1

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)

let spin_limit = 64

let backoff n =
  if n < spin_limit then Domain.cpu_relax ()
  else
    (* Yield the core: on an oversubscribed machine the opposite side
       cannot run until we sleep. *)
    Unix.sleepf 0.000_05

let push t v =
  let tail = Atomic.get t.tail in
  if tail - t.cached_head >= capacity t then begin
    let n = ref 0 in
    t.cached_head <- Atomic.get t.head;
    while tail - t.cached_head >= capacity t do
      backoff !n;
      incr n;
      t.cached_head <- Atomic.get t.head
    done
  end;
  t.buf.(tail land t.mask) <- Some v;
  Atomic.set t.tail (tail + 1)

let try_pop t =
  let head = Atomic.get t.head in
  if head >= t.cached_tail then t.cached_tail <- Atomic.get t.tail;
  if head >= t.cached_tail then None
  else begin
    let v = t.buf.(head land t.mask) in
    t.buf.(head land t.mask) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let pop t =
  let rec go n =
    match try_pop t with
    | Some v -> v
    | None ->
        backoff n;
        go (n + 1)
  in
  go 0
