(* Bounded single-producer / single-consumer ring on OCaml Domains.

   The router (one producer) feeds each shard worker (one consumer)
   through one of these. Publication protocol: the producer writes the
   element into the ring plainly, then bumps [tail] with a sequentially
   consistent atomic store — the consumer's atomic read of [tail]
   therefore happens-after the element write. Symmetrically the
   consumer clears the cell before bumping [head]. Each side caches the
   other side's index and refreshes it only on apparent full/empty, so
   the steady-state cost is two plain array accesses and one atomic
   store per element.

   Blocking uses bounded exponential backoff: a short [cpu_relax] spin
   first, then sleeps whose duration doubles per retry up to a 1ms cap.
   The sleep tier matters on machines with fewer cores than domains
   (including single-core CI hosts), where a pure spin would steal the
   timeslice the opposite side needs to make progress; the exponential
   growth keeps a long stall from burning a core at the minimum sleep
   quantum while still reacting within microseconds to a short one.

   Either side may [close] the queue. A closed queue never wedges the
   other side: a producer blocked in [push] (or arriving later) gets
   [Closed] instead of spinning forever on a dead consumer, and a
   consumer's [pop] drains whatever was already published, then raises
   [Closed] instead of waiting for a producer that is gone.

   Exact delivery under a close race: [push]/[try_push] re-check
   [closed] immediately before the publishing [tail] store (cheap early
   exit) and once more immediately after it. The post-publish check is
   what makes the guarantee exact rather than best-effort: with
   sequentially consistent atomics, a push that returns normally read
   [closed = false] *after* its [tail] store, so that store precedes
   the close in the SC total order — and any consumer that observes
   the close and then does a final drain (as [pop] does before raising
   [Closed]) is guaranteed to see the element. Conversely a push that
   races a consumer-side close raises [Closed]; delivery of that
   in-flight element is indeterminate (the closer may or may not have
   drained it), but it is never lost *silently* — before this check, a
   producer racing a close on a non-full ring would publish an element
   nobody would ever pop, and a router counting pushed-vs-processed
   events would stall forever on the phantom. *)

exception Closed

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t; (* next index to pop; written by the consumer only *)
  tail : int Atomic.t; (* next index to fill; written by the producer only *)
  closed : bool Atomic.t; (* set by either side, never cleared *)
  mutable cached_head : int; (* producer's view of [head] *)
  mutable cached_tail : int; (* consumer's view of [tail] *)
}

let create ~capacity =
  let cap = max 2 capacity in
  (* Round up to a power of two so index wrap is a mask. *)
  let rec pow2 n = if n >= cap then n else pow2 (n * 2) in
  let n = pow2 2 in
  {
    buf = Array.make n None;
    mask = n - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed = Atomic.make false;
    cached_head = 0;
    cached_tail = 0;
  }

let capacity t = t.mask + 1

(* The two index reads can tear against a concurrent push/pop (tail
   read, then the consumer advances head past it, or vice versa), so
   clamp to the only occupancies a bounded ring can hold: [0..capacity].
   Approximate by design — this feeds gauges, never control flow. *)
let length t =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  min (capacity t) (max 0 (tail - head))

let close t = Atomic.set t.closed true

let is_closed t = Atomic.get t.closed

let spin_limit = 32

let max_sleep = 0.001

let backoff n =
  if n < spin_limit then Domain.cpu_relax ()
  else begin
    (* Exponential sleep: 1µs, 2µs, 4µs, ... capped at [max_sleep].
       On an oversubscribed machine the opposite side cannot run until
       we yield the core. *)
    let k = min (n - spin_limit) 20 in
    Unix.sleepf (min max_sleep (1e-6 *. float_of_int (1 lsl k)))
  end

let try_push t v =
  if Atomic.get t.closed then raise Closed;
  let tail = Atomic.get t.tail in
  if tail - t.cached_head >= capacity t then t.cached_head <- Atomic.get t.head;
  if tail - t.cached_head >= capacity t then false
  else begin
    t.buf.(tail land t.mask) <- Some v;
    if Atomic.get t.closed then raise Closed;
    Atomic.set t.tail (tail + 1);
    (* Post-publish re-check: see the close-race note in the header. *)
    if Atomic.get t.closed then raise Closed;
    true
  end

let push t v =
  if Atomic.get t.closed then raise Closed;
  let tail = Atomic.get t.tail in
  if tail - t.cached_head >= capacity t then begin
    let n = ref 0 in
    t.cached_head <- Atomic.get t.head;
    while tail - t.cached_head >= capacity t do
      if Atomic.get t.closed then raise Closed;
      backoff !n;
      incr n;
      t.cached_head <- Atomic.get t.head
    done
  end;
  t.buf.(tail land t.mask) <- Some v;
  (* Re-check immediately before the publishing store — the full-queue
     wait above is not the only window where the consumer can close. *)
  if Atomic.get t.closed then raise Closed;
  Atomic.set t.tail (tail + 1);
  (* And immediately after: see the close-race note in the header. *)
  if Atomic.get t.closed then raise Closed

let try_pop t =
  let head = Atomic.get t.head in
  if head >= t.cached_tail then t.cached_tail <- Atomic.get t.tail;
  if head >= t.cached_tail then None
  else begin
    let v = t.buf.(head land t.mask) in
    t.buf.(head land t.mask) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let pop t =
  let rec go n =
    match try_pop t with
    | Some v -> v
    | None ->
        (* Re-check emptiness after observing [closed]: the producer may
           have published elements before closing, and those must drain
           before the consumer sees [Closed]. *)
        if Atomic.get t.closed then (
          match try_pop t with Some v -> v | None -> raise Closed)
        else begin
          backoff n;
          go (n + 1)
        end
  in
  go 0
