(** Trace (de)serialization.

    A recorded event stream can be saved to a file and replayed later —
    the offline-debugging workflow real instrumentation tools support,
    and a convenient interchange format for regression corpora.

    The format is line-oriented text, one event per line, mirroring
    {!Event.pp} but strictly parseable:

    {v
      store <tid> <addr> <size>
      clf <kind> <tid> <addr> <size>
      fence <tid>
      register_pmem <base> <size>
      epoch_begin <tid> | epoch_end <tid>
      strand_begin <tid> <strand> | strand_end <tid> <strand>
      join_strand <tid>
      tx_log <tid> <obj_addr> <size>
      register_var <addr> <size> <name>
      call <tid> <func>
      assert_durable <addr> <size>
      assert_ordered <a> <asz> <b> <bsz>
      assert_fresh <addr> <size>
      program_end
      # comments and blank lines are ignored
    v} *)

val event_to_line : Event.t -> string

val event_of_line : string -> (Event.t option, string) result
(** [Ok None] for blank/comment lines. *)

val to_string : Recorder.trace -> string

val of_string : string -> (Recorder.trace, string) result
(** Fails with a line-numbered message on the first malformed line. *)

type lenient = {
  trace : Event.t array;
  skipped : (int * string) list;  (** (line number, error) per malformed line *)
  synthesized_end : bool;
      (** true when the input did not end with [program_end] and one was
          appended (unless [synthesize_end:false]). *)
}

val of_string_lenient : ?metrics:Obs.Metrics.t -> ?synthesize_end:bool -> string -> lenient
(** Best-effort parse: malformed lines are skipped and collected as
    per-line diagnostics instead of aborting, and a truncated trace
    (one not ending in [program_end]) gets a synthesized terminator so
    end-of-run detector rules still fire. [synthesize_end] defaults to
    [true]. [metrics] (default disabled) gets
    [trace_io_lines_parsed_total] / [trace_io_lines_skipped_total]. *)

val save : string -> Recorder.trace -> unit
(** Raises [Sys_error] on write failure; the channel is closed on every
    exit path. *)

val load : string -> (Recorder.trace, string) result
(** Strict parse of a trace file. I/O failures (including short reads)
    are reported as [Error] and never leak the input channel. *)

val load_lenient : ?metrics:Obs.Metrics.t -> ?synthesize_end:bool -> string -> (lenient, string) result
(** [load] with {!of_string_lenient} parsing; [Error] only for I/O
    failures. *)
