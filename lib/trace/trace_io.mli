(** Trace (de)serialization.

    A recorded event stream can be saved to a file and replayed later —
    the offline-debugging workflow real instrumentation tools support,
    and a convenient interchange format for regression corpora.

    The format is line-oriented text, one event per line, mirroring
    {!Event.pp} but strictly parseable:

    {v
      store <tid> <addr> <size>
      clf <kind> <tid> <addr> <size>
      fence <tid>
      register_pmem <base> <size>
      epoch_begin <tid> | epoch_end <tid>
      strand_begin <tid> <strand> | strand_end <tid> <strand>
      join_strand <tid>
      tx_log <tid> <obj_addr> <size>
      register_var <addr> <size> <name>
      call <tid> <func>
      assert_durable <addr> <size>
      assert_ordered <a> <asz> <b> <bsz>
      assert_fresh <addr> <size>
      program_end
      # comments and blank lines are ignored
    v} *)

val event_to_line : Event.t -> string

val event_of_line : string -> (Event.t option, string) result
(** [Ok None] for blank/comment lines. *)

val to_string : Recorder.trace -> string

val of_string : string -> (Recorder.trace, string) result
(** Fails with a line-numbered message on the first malformed line. *)

type lenient = {
  trace : Event.t array;
  skipped : (int * string) list;  (** (line number, error) per malformed line *)
  synthesized_end : bool;
      (** true when the input did not end with [program_end] and one was
          appended (unless [synthesize_end:false]). *)
}

val of_string_lenient : ?metrics:Obs.Metrics.t -> ?synthesize_end:bool -> string -> lenient
(** Best-effort parse: malformed lines are skipped and collected as
    per-line diagnostics instead of aborting, and a truncated trace
    (one not ending in [program_end]) gets a synthesized terminator so
    end-of-run detector rules still fire. [synthesize_end] defaults to
    [true]. [metrics] (default disabled) gets
    [trace_io_lines_parsed_total] / [trace_io_lines_skipped_total]. *)

val save : string -> Recorder.trace -> unit
(** Raises [Sys_error] on write failure; the channel is closed on every
    exit path. Written in binary mode so save/load roundtrips are
    byte-identical cross-platform. *)

val load : string -> (Recorder.trace, string) result
(** Strict parse of a trace file into an array. Reads one line at a
    time (never the whole file into a string); I/O failures are
    reported as [Error] and never leak the input channel. *)

val load_lenient : ?metrics:Obs.Metrics.t -> ?synthesize_end:bool -> string -> (lenient, string) result
(** [load] with {!of_string_lenient} semantics; [Error] only for I/O
    failures. *)

(** {1 Streaming}

    The [*_file] functions below parse line-by-line and hand each event
    to a callback without ever materializing the trace: memory use is
    bounded by the longest line, not the trace length, so multi-GB
    traces replay in constant memory. They share the line parser — and,
    for the lenient variants, the skip-and-report plus
    synthesize-[program_end] semantics and per-line error positions —
    with {!of_string} / {!of_string_lenient}. Materialize (via {!load}
    / {!load_lenient}) only when random access over the event sequence
    is genuinely required, e.g. crash-point prefix replay. *)

type stream_stats = {
  events : int;  (** events delivered to [f], including a synthesized end *)
  skipped_lines : (int * string) list;  (** (line number, error) per malformed line *)
  synthesized : bool;  (** a [program_end] was appended for a truncated trace *)
}

val fold_file :
  ?metrics:Obs.Metrics.t ->
  ?synthesize_end:bool ->
  ?on_skip:(int -> string -> unit) ->
  string ->
  init:'a ->
  f:('a -> Event.t -> 'a) ->
  ('a * stream_stats, string) result
(** Lenient streaming fold over a trace file. Malformed lines are
    skipped, reported through [on_skip] (called with the 1-based line
    number and error as they are encountered) and collected in the
    returned stats; a truncated trace gets a synthesized terminator
    event unless [synthesize_end:false]. [metrics] (default disabled)
    gets [trace_io_lines_parsed_total] / [trace_io_lines_skipped_total].
    [Error] only for I/O failures. *)

val iter_file :
  ?metrics:Obs.Metrics.t ->
  ?synthesize_end:bool ->
  ?on_skip:(int -> string -> unit) ->
  string ->
  f:(Event.t -> unit) ->
  (stream_stats, string) result
(** {!fold_file} without an accumulator. *)

val fold_file_strict : string -> init:'a -> f:('a -> Event.t -> 'a) -> ('a, string) result
(** Strict streaming fold: stops at the first malformed line with the
    same [line N: ...] message {!of_string} produces. Events already
    folded before the error are discarded with the accumulator. *)

val iter_file_strict : string -> f:(Event.t -> unit) -> (unit, string) result
(** {!fold_file_strict} without an accumulator. Note that [f] has
    already observed every event preceding a malformed line when the
    error is returned — side effects are not rolled back. *)

val save_stream : string -> ((Event.t -> unit) -> unit) -> int
(** [save_stream path produce] opens [path] (binary mode), hands
    [produce] an emit function that appends one line per event, and
    closes the file on every exit path. Returns the number of events
    written. The streaming dual of {!save}: nothing is buffered, so an
    arbitrarily long run can be recorded in constant memory. *)
