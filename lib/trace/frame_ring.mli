(** Bounded single-producer / single-consumer ring of {e frames} — flat
    [Bytes] buffers each packing a batch of encoded events — the
    batched transport behind {!Shard_router}.

    Motivation: the per-event {!Spsc} hand-off allocates a boxed
    message per event and pays one sequentially consistent store per
    element, which dominates detection work (~70ns/event dispatch cost
    became ~740ns sharded in BENCH_pr5). Here the producer encodes
    events back to back into a preallocated staging slot with plain
    writes ({e no allocation per event}) and publishes a whole frame —
    up to [frame_events] records — with a single atomic store;
    the consumer decodes a frame at a time.

    Exactly one domain may call the producer operations
    ({!push}/{!flush}/{!push_stop}) and exactly one the consumer
    operations ({!wait}/{!try_consume}/{!consume}).

    {b Record format} (stable only within a process): a tag byte
    (constructor, with the replica-silence flag in bit 7), the event's
    stream seq as int64 LE, then the fields — ints as int64 LE, strings
    as int32 LE length + bytes, CLF kinds as one byte. A record larger
    than the slot (a long registered-variable name) grows that slot;
    nothing is ever truncated.

    {b Close semantics.} Either side may {!close}; blocked operations
    wake with {!Closed}; the consumer drains already-published frames
    before raising. The producer re-checks [closed] immediately before
    {e and} after the publishing store, which (under seq-cst atomics)
    makes delivery exact: a {!push}/{!flush}/{!push_stop} that returns
    normally is guaranteed visible to any consumer that drains after
    observing the close, so a publish racing [close] raises rather than
    losing events silently. Events still {e staged} when the ring is
    abandoned are lost — flush before walking away. *)

type t

exception Closed

val create : ?frame_bytes:int -> slots:int -> frame_events:int -> unit -> t
(** [create ~slots ~frame_events ()] — a ring of [slots] (rounded up to
    a power of two, min 2) frame buffers, each published once it holds
    [frame_events] events (or earlier via {!flush}/{!push_stop}).
    [frame_bytes] presizes each slot; the default fits [frame_events]
    fixed-size records, and slots grow on demand. *)

val capacity : t -> int
(** Ring capacity in frames. *)

val frame_events : t -> int

val length : t -> int
(** Published-but-unconsumed frames. The two index reads can tear
    against concurrent publish/consume, so the result is clamped to
    [0..capacity] — approximate, monotonic-consistent; feeds the
    queue-depth gauges (in {e frames}, not events). *)

val staged : t -> int
(** Events encoded but not yet published (producer side only). *)

val published_frames : t -> int
(** Frames published so far (producer side). Because the ring is FIFO,
    frame [k] on the producer is frame [k] on the consumer — the pair
    (ring, index) names one frame end to end, which is how the causal
    trace draws publish→pop flow arrows. *)

val consumed_frames : t -> int
(** Frames fully decoded so far (consumer side). *)

val close : t -> unit
(** Poison the ring. Idempotent, callable from either side. Published
    frames remain consumable; staged events are lost. *)

val is_closed : t -> bool

(** {1 Producer} *)

val push : t -> seq:int -> silent:bool -> Event.t -> int
(** Encode one event into the staging frame. Returns the {e total}
    number of events published by this call: [0] while staging,
    otherwise the event count of the frame(s) it published — because
    this push filled the frame to [frame_events], or because the
    staging slot ran out of bytes (the prior events publish and this
    event starts a fresh frame). Every published frame is accounted in
    some call's return value, so a caller that consumes only on a
    positive return sees every frame. Blocks (backoff) while the ring
    is full of unconsumed frames. Raises {!Closed} if the ring is
    — or becomes, while blocked or publishing — closed; on a raise
    {e after} the publishing store the frame is still delivered to a
    draining consumer (see close semantics above). *)

val flush : t -> int
(** Publish the staged partial frame, if any; returns its event count
    (0 when nothing was staged). The barrier-flush rule: callers must
    flush before waiting on consumer progress, or the staged tail can
    never drain. *)

val push_stop : t -> unit
(** Publish the staged partial frame (possibly empty) marked
    end-of-stream: the consumer decodes its events, then learns the
    stream is over. *)

(** {1 Consumer} *)

val wait : t -> unit
(** Block (backoff) until at least one published frame is available.
    Raises {!Closed} once the ring is closed and drained. *)

val try_consume :
  t -> f:(seq:int -> silent:bool -> Event.t -> unit) -> [ `Empty | `Frame of int | `Stop of int ]
(** Decode the head frame, calling [f] per event in order, then free
    the slot. [`Frame n] delivered [n] events; [`Stop n] delivered [n]
    events and the stream is over; [`Empty] means no published frame
    (closed or not) — never blocks, never raises {!Closed}. *)

val consume :
  t -> f:(seq:int -> silent:bool -> Event.t -> unit) -> [ `Frame of int | `Stop of int ]
(** Blocking {!try_consume}: {!wait} then decode. Raises {!Closed} once
    closed and drained. *)

val last_frame_ts : t -> float
(** Publish timestamp ({!Obs.Clock.now} at the producer's publishing
    store) of the most recently consumed frame; [0.0] before the first
    {!try_consume} that returns a frame. Consumer side only. Workers
    derive queue residency from it ([now - last_frame_ts] right after a
    consume), and the stamps of successive frames of one ring are
    non-decreasing (the QCheck law pins this across wraparound and
    stop-with-partial-frame). *)
