open Pmem

(* Sharded, domain-parallel detection: one router (the engine-facing
   sink, running on the dispatching domain) partitions the event stream
   by cache line across N workers, each owning its own bookkeeping and
   per-rule state. Line L belongs to shard [L mod N]; global events
   (fences, epochs, strands, registrations, program end) are broadcast
   to every worker, so each worker sees exactly the subsequence of the
   trace that concerns its lines, in trace order. The merge reassembles
   one canonical report whose findings equal the single-shard run —
   see DESIGN.md "Sharded detection" for the equality contract.

   Transport: by default events are batched into frames ([Frame_ring]):
   the router encodes each event into the destination shard's staging
   buffer (no per-event allocation) and publishes a whole frame every
   [frame_size] events; workers decode and dispatch a frame at a time
   and bump [processed] once per frame. The drain barrier flushes
   partial frames first, so cross-shard stalls see every routed event.
   [frame_size = 0] selects the legacy per-event SPSC hand-off, kept as
   the honest baseline for the frames-vs-per-event bench curve. *)

let max_prior_seqs = 8
(* Must match the per-backend cap (Store_intf.max_prior_seqs references
   this constant): the cross-shard merge keeps the 8 smallest seqs of
   the union, which equals the single-shard cap because each shard's
   list is itself the 8 smallest of its partition. *)

let default_frame_size = 256

type store_obs = { so_overlapped : bool; so_prior_seqs : int list }

type clf_obs = {
  co_matched : int;
  co_newly : int;
  co_redundant : (int * int * int * int) list;
      (* (addr, size, store seq, prior CLF seq) per already-flushed hit *)
}

type worker = {
  w_event : seq:int -> silent:bool -> Event.t -> unit;
  w_scan_store : seq:int -> tid:int -> lo:int -> hi:int -> store_obs;
  w_fire_store : seq:int -> addr:int -> size:int -> store_obs -> unit;
  w_scan_clf : seq:int -> tid:int -> lo:int -> hi:int -> clf_obs;
  w_fire_clf : seq:int -> addr:int -> size:int -> clf_obs -> unit;
  w_finish : unit -> Bug.report;
}

let cap_priors priors =
  let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
  take max_prior_seqs (List.sort_uniq compare priors)

let merge_store_obs obs =
  {
    so_overlapped = List.exists (fun o -> o.so_overlapped) obs;
    so_prior_seqs = cap_priors (List.concat_map (fun o -> o.so_prior_seqs) obs);
  }

let merge_clf_obs obs =
  {
    co_matched = List.fold_left (fun acc o -> acc + o.co_matched) 0 obs;
    co_newly = List.fold_left (fun acc o -> acc + o.co_newly) 0 obs;
    co_redundant = List.concat_map (fun o -> o.co_redundant) obs;
  }

(* {2 Worker messages and execution} *)

type msg = Ev of { seq : int; silent : bool; ev : Event.t } | Stop

type transport =
  | Per_event of msg Spsc.t array (* one boxed message + one atomic store per event *)
  | Framed of Frame_ring.t array (* flat byte frames, published every [frame_size] events *)

type t = {
  shards : int;
  workers : worker array;
  transport : transport;
  pushed : int array; (* per shard, router side *)
  processed : int Atomic.t array;
      (* per shard: bumped by the worker after each event (per-event
         transport) or once per decoded frame, by its event count
         (framed transport) *)
  domains : Bug.report Domain.t array; (* empty in inline mode *)
  inline_failures : string option ref array;
  use_domains : bool;
  mutable registered : Addr.range list;
  mutable track_all : bool;
  pinned : (int, unit) Hashtbl.t; (* line index -> (), lines of registered vars *)
  mutable events : int;
  metrics : Obs.Metrics.t;
  worker_metrics : Obs.Metrics.t array;
      (* one registry per worker, mutated only on that worker's domain;
         folded into [metrics] by [finish] after the workers join *)
  labels : (string * string) list array;
      (* per-shard label lists, preallocated — the send path must not
         allocate a label list per event *)
  enc_acc : float array;
      (* per shard, router side: seconds spent encoding/publishing into
         the staging frame since its last publish; observed as
         [shard_encode_seconds] when the frame goes out *)
  flightrec : Obs.Flightrec.t; (* router-side ring: frame publishes, barrier stalls *)
  worker_flightrecs : Obs.Flightrec.t array; (* one per worker domain: frame pops *)
  max_bugs_per_kind : int;
  mutable result : Bug.report option;
}

let shard_label i = [ ("shard", string_of_int i) ]

(* The transport is closed on every exit path: if a worker domain ever
   dies (it should not — detector exceptions are caught below), the
   router's next push raises [Spsc.Closed]/[Frame_ring.Closed] instead
   of blocking forever on a consumer that is gone; the engine then
   quarantines the router sink. *)
let worker_loop w q processed wreg shard =
  Fun.protect ~finally:(fun () -> Spsc.close q) @@ fun () ->
  let failure = ref None in
  let labels = shard_label shard in
  let rec go () =
    match Spsc.pop q with
    | Ev { seq; silent; ev } ->
        (* Worker-side telemetry lives in the worker's own registry:
           zero cross-domain contention, folded in at finish. The
           latency histogram is what attributes hand-off vs. detector
           cost for the sharding regression (ROADMAP Open item 1). *)
        (if !failure = None then
           if not (Obs.Metrics.is_on wreg) then (
             try w.w_event ~seq ~silent ev with exn -> failure := Some (Printexc.to_string exn))
           else begin
             Obs.Metrics.inc wreg ~labels "shard_worker_events_total";
             let t0 = Unix.gettimeofday () in
             (try w.w_event ~seq ~silent ev with exn -> failure := Some (Printexc.to_string exn));
             Obs.Metrics.observe wreg ~labels "shard_worker_event_seconds"
               (Unix.gettimeofday () -. t0)
           end);
        Atomic.incr processed;
        go ()
    | Stop -> (
        let r =
          try w.w_finish ()
          with exn -> { (Bug.empty_report "sharded") with Bug.failure = Some (Printexc.to_string exn) }
        in
        match !failure with None -> r | Some msg -> { r with Bug.failure = Some msg })
  in
  go ()

(* Framed twin of [worker_loop]: decode a published frame, dispatch its
   events, then account the whole batch — one [processed] bump and one
   histogram observation per stage per frame, which is the point of
   batching. Stage attribution (all against [Obs.Clock], the clock the
   producer stamps frames with):

     residency = consume start - frame publish stamp   (time in queue)
     dispatch  = sum of the per-event detector calls
     decode    = frame total - dispatch                (byte decoding)

   When metrics are off the whole attribution path is behind one branch
   per frame plus the plain dispatch closure — the overhead guard test
   pins it. *)
let framed_worker_loop w ring processed wreg fring shard =
  Fun.protect ~finally:(fun () -> Frame_ring.close ring) @@ fun () ->
  let failure = ref None in
  let labels = shard_label shard in
  let on_event_plain ~seq ~silent ev =
    if !failure = None then
      try w.w_event ~seq ~silent ev with exn -> failure := Some (Printexc.to_string exn)
  in
  let metrics_on = Obs.Metrics.is_on wreg in
  let fr_on = Obs.Flightrec.is_on fring in
  let disp_acc = ref 0.0 in
  let on_event =
    if not metrics_on then on_event_plain
    else fun ~seq ~silent ev ->
      let t0 = Obs.Clock.now () in
      on_event_plain ~seq ~silent ev;
      disp_acc := !disp_acc +. (Obs.Clock.now () -. t0)
  in
  let finish () =
    let r =
      try w.w_finish ()
      with exn -> { (Bug.empty_report "sharded") with Bug.failure = Some (Printexc.to_string exn) }
    in
    match !failure with None -> r | Some msg -> { r with Bug.failure = Some msg }
  in
  let account n t0 =
    if n > 0 then begin
      if metrics_on then begin
        let total = Obs.Clock.now () -. t0 in
        let dispatch = !disp_acc in
        Obs.Metrics.inc wreg ~labels ~by:n "shard_worker_events_total";
        Obs.Metrics.observe wreg ~labels "shard_worker_frame_seconds" total;
        Obs.Metrics.observe wreg ~labels "shard_frame_residency_seconds"
          (Float.max 0.0 (t0 -. Frame_ring.last_frame_ts ring));
        Obs.Metrics.observe wreg ~labels "shard_frame_dispatch_seconds" dispatch;
        Obs.Metrics.observe wreg ~labels "shard_frame_decode_seconds"
          (Float.max 0.0 (total -. dispatch))
      end;
      ignore (Atomic.fetch_and_add processed n)
    end;
    disp_acc := 0.0;
    if fr_on then
      Obs.Flightrec.record fring ~ts:(Obs.Clock.now ()) ~cat:"frame" ~name:"pop" ~a:shard
        ~b:(Frame_ring.consumed_frames ring - 1)
  in
  let rec go () =
    Frame_ring.wait ring;
    let t0 = if metrics_on then Obs.Clock.now () else 0.0 in
    match Frame_ring.try_consume ring ~f:on_event with
    | `Empty -> go ()
    | `Frame n ->
        account n t0;
        go ()
    | `Stop n ->
        account n t0;
        finish ()
  in
  go ()

(* Inline dispatch of one event to worker [i] on the router's domain,
   with the same failure capture as the domain loops. *)
let inline_event t i ~seq ~silent ev =
  if !(t.inline_failures.(i)) = None then
    try t.workers.(i).w_event ~seq ~silent ev
    with exn -> t.inline_failures.(i) := Some (Printexc.to_string exn)

(* Inline framed mode decodes published frames synchronously right
   after publishing them — same encode/decode path and frame boundaries
   as the domain mode, deterministic scheduling. *)
let consume_inline t i ring =
  let wreg = t.worker_metrics.(i) in
  let labels = t.labels.(i) in
  let metrics_on = Obs.Metrics.is_on wreg in
  let fring = t.worker_flightrecs.(i) in
  let fr_on = Obs.Flightrec.is_on fring in
  let disp_acc = ref 0.0 in
  let on_event =
    if not metrics_on then fun ~seq ~silent ev -> inline_event t i ~seq ~silent ev
    else fun ~seq ~silent ev ->
      let t0 = Obs.Clock.now () in
      inline_event t i ~seq ~silent ev;
      disp_acc := !disp_acc +. (Obs.Clock.now () -. t0)
  in
  let rec go () =
    let t0 = if metrics_on then Obs.Clock.now () else 0.0 in
    match Frame_ring.try_consume ring ~f:on_event with
    | `Empty -> ()
    | `Frame n | `Stop n ->
        if n > 0 then begin
          if metrics_on then begin
            let total = Obs.Clock.now () -. t0 in
            let dispatch = !disp_acc in
            Obs.Metrics.inc wreg ~labels ~by:n "shard_worker_events_total";
            Obs.Metrics.observe wreg ~labels "shard_worker_frame_seconds" total;
            Obs.Metrics.observe wreg ~labels "shard_frame_residency_seconds"
              (Float.max 0.0 (t0 -. Frame_ring.last_frame_ts ring));
            Obs.Metrics.observe wreg ~labels "shard_frame_dispatch_seconds" dispatch;
            Obs.Metrics.observe wreg ~labels "shard_frame_decode_seconds"
              (Float.max 0.0 (total -. dispatch))
          end;
          ignore (Atomic.fetch_and_add t.processed.(i) n)
        end;
        disp_acc := 0.0;
        if fr_on then
          Obs.Flightrec.record fring ~ts:(Obs.Clock.now ()) ~cat:"frame" ~name:"pop" ~a:i
            ~b:(Frame_ring.consumed_frames ring - 1);
        go ()
  in
  go ()

(* Router-side accounting for a just-published frame of [n] events.
   [shard_events_total] is bumped per frame (by the frame's count), not
   per event — totals are exact once the stream is flushed, and the
   queue-depth gauge samples on the shard's own publish cadence. *)
let on_publish t i ring n =
  if Obs.Metrics.is_on t.metrics then begin
    Obs.Metrics.inc t.metrics ~labels:t.labels.(i) ~by:n "shard_events_total";
    Obs.Metrics.max_set t.metrics ~labels:t.labels.(i) "shard_queue_depth_peak"
      (float_of_int (Frame_ring.length ring));
    (* The encode stage: accumulated per-event push time (including any
       full-ring wait — honest backpressure) since this shard's previous
       publish, attributed to the frame that just went out. *)
    Obs.Metrics.observe t.metrics ~labels:t.labels.(i) "shard_encode_seconds" t.enc_acc.(i);
    t.enc_acc.(i) <- 0.0
  end;
  if Obs.Flightrec.is_on t.flightrec then
    Obs.Flightrec.record t.flightrec ~ts:(Obs.Clock.now ()) ~cat:"frame" ~name:"publish" ~a:i
      ~b:(Frame_ring.published_frames ring - 1);
  if not t.use_domains then consume_inline t i ring

(* Per-event transport: sample the depth gauge on the shard's own push
   count — every shard gets an early sample (first push) and then one
   every 64 of *its* pushes, instead of all shards sampling on the same
   global tick (which left shards with <64 routed events unsampled). *)
let sample_depth t i q =
  if Obs.Metrics.is_on t.metrics then begin
    let p = t.pushed.(i) in
    if p = 1 || p land 63 = 0 then
      Obs.Metrics.max_set t.metrics ~labels:t.labels.(i) "shard_queue_depth_peak"
        (float_of_int (Spsc.length q))
  end

let send t i ~seq ~silent ev =
  t.pushed.(i) <- t.pushed.(i) + 1;
  match t.transport with
  | Per_event queues ->
      Obs.Metrics.inc t.metrics ~labels:t.labels.(i) "shard_events_total";
      if t.use_domains then begin
        Spsc.push queues.(i) (Ev { seq; silent; ev });
        sample_depth t i queues.(i)
      end
      else begin
        let wreg = t.worker_metrics.(i) in
        (if !(t.inline_failures.(i)) = None then
           if not (Obs.Metrics.is_on wreg) then inline_event t i ~seq ~silent ev
           else begin
             Obs.Metrics.inc wreg ~labels:t.labels.(i) "shard_worker_events_total";
             let t0 = Unix.gettimeofday () in
             inline_event t i ~seq ~silent ev;
             Obs.Metrics.observe wreg ~labels:t.labels.(i) "shard_worker_event_seconds"
               (Unix.gettimeofday () -. t0)
           end);
        Atomic.incr t.processed.(i)
      end
  | Framed rings ->
      if Obs.Metrics.is_on t.metrics then begin
        let t0 = Obs.Clock.now () in
        let n = Frame_ring.push rings.(i) ~seq ~silent ev in
        t.enc_acc.(i) <- t.enc_acc.(i) +. (Obs.Clock.now () -. t0);
        if n > 0 then on_publish t i rings.(i) n
      end
      else begin
        let n = Frame_ring.push rings.(i) ~seq ~silent ev in
        if n > 0 then on_publish t i rings.(i) n
      end

let broadcast t ~seq ?silent_except ev =
  for i = 0 to t.shards - 1 do
    let silent = match silent_except with None -> false | Some owner -> i <> owner in
    send t i ~seq ~silent ev
  done

(* Publish every shard's staged partial frame. Part of the barrier
   protocol: a drain that did not flush first would spin forever on
   events parked in staging buffers no worker can see. *)
let flush_frames t =
  match t.transport with
  | Per_event _ -> ()
  | Framed rings ->
      for i = 0 to t.shards - 1 do
        let n = Frame_ring.flush rings.(i) in
        if n > 0 then on_publish t i rings.(i) n
      done

(* Wait until every worker has consumed everything pushed so far. The
   Atomic read of [processed] after the worker's last mutation gives the
   router a happens-before edge: once drained, the router may touch
   worker state directly (the workers are parked in [pop]/[wait]). *)
let drain t =
  flush_frames t;
  if t.use_domains then
    for i = 0 to t.shards - 1 do
      let n = ref 0 in
      while Atomic.get t.processed.(i) < t.pushed.(i) do
        if !n < 64 then Domain.cpu_relax () else Unix.sleepf 0.000_05;
        incr n
      done
    done

(* {2 Address-range decomposition} *)

let owner t line = line mod t.shards

let in_registered t ~lo ~hi =
  t.track_all || List.exists (fun r -> Addr.overlaps r (Addr.range ~lo ~hi)) t.registered

(* Stalled (multi-line) address event: drain everyone, pin the lines
   when the event is a store (the spanning location it creates must be
   replicated, and every later event on those lines broadcast to keep
   the replicas in step), then scan the event's FULL range synchronously
   on every shard and fire the rule exactly once, with the merged
   observation, on the owner of the first line.

   The full-range scan — never a per-line clip — is what the equality
   contract rests on: a location's extent is observable (a partial
   overwrite unflushes the whole slot; findings report slot extents), so
   a clipped slot would evolve differently from the single-shard run.
   Scanning everywhere means replicas and owner-resident locations are
   each observed once per holding shard; the merged observation dedups
   (priors are sorted/uniqued, counts are used as zero-tests, the
   redundant-flush pick is a canonical minimum), so multiplicity never
   shows. *)
let stalled_address_event t ~seq ~tid ~lo ~hi ev =
  Obs.Metrics.inc t.metrics "shard_barrier_stalls_total";
  if Obs.Metrics.is_on t.metrics then begin
    let t0 = Obs.Clock.now () in
    drain t;
    let dt = Obs.Clock.now () -. t0 in
    Obs.Metrics.observe t.metrics "shard_barrier_stall_seconds" dt;
    if Obs.Flightrec.is_on t.flightrec then
      Obs.Flightrec.record t.flightrec ~ts:t0 ~cat:"barrier" ~name:"stall" ~a:seq
        ~b:(int_of_float (dt *. 1e9))
  end
  else drain t;
  let fire_shard = owner t (Addr.line_of lo) in
  match ev with
  | `Store ->
      List.iter (fun l -> Hashtbl.replace t.pinned l ()) (Addr.lines_of_range ~lo ~hi);
      let obs =
        List.init t.shards (fun i -> t.workers.(i).w_scan_store ~seq ~tid ~lo ~hi)
      in
      t.workers.(fire_shard).w_fire_store ~seq ~addr:lo ~size:(hi - lo) (merge_store_obs obs)
  | `Clf ->
      let obs = List.init t.shards (fun i -> t.workers.(i).w_scan_clf ~seq ~tid ~lo ~hi) in
      t.workers.(fire_shard).w_fire_clf ~seq ~addr:lo ~size:(hi - lo) (merge_clf_obs obs)

let address_event t ~seq ~tid ~addr ~size ev_tag ev =
  let lo = addr and hi = addr + size in
  if size <= 0 || not (in_registered t ~lo ~hi) then ()
  else
    match Addr.lines_of_range ~lo ~hi with
    | [ l ] when Hashtbl.mem t.pinned l ->
        (* A pinned line is replicated: every shard applies the event to
           its replica; only the owner reports. The owner's observation
           is complete — every location overlapping its line lives on it
           (its own residents plus every replica). *)
        broadcast t ~seq ~silent_except:(owner t l) ev
    | [ l ] -> send t (owner t l) ~seq ~silent:false ev
    | l :: rest
      when (not (List.exists (Hashtbl.mem t.pinned) (l :: rest)))
           && List.for_all (fun l' -> owner t l' = owner t l) rest ->
        (* Multi-line but single-owner and unpinned: the spanning
           location stays whole on one shard. *)
        send t (owner t l) ~seq ~silent:false ev
    | _ -> stalled_address_event t ~seq ~tid ~lo ~hi ev_tag

let route t ev =
  t.events <- t.events + 1;
  let seq = t.events in
  match ev with
  | Event.Store { addr; size; tid } -> address_event t ~seq ~tid ~addr ~size `Store ev
  | Event.Clf { addr; size; tid; kind = _ } -> address_event t ~seq ~tid ~addr ~size `Clf ev
  | Event.Tx_log _ ->
      (* Redundant-logging state is per transaction, not per line: keep
         the whole log view on shard 0 so overlap checks see every
         append. Epoch begin/end (which scope the log) are broadcast,
         so shard 0 sees them too. *)
      send t 0 ~seq ~silent:false ev
  | Event.Register_pmem { base; size } ->
      t.track_all <- false;
      t.registered <- Addr.of_base_size base size :: t.registered;
      broadcast t ~seq ev
  | Event.Register_var { name = _; addr; size } ->
      (* Pin the variable's lines: every shard replicates them so the
         broadcast order/durability rules read identical var state.
         Contract: Register_var precedes stores to its range. *)
      List.iter (fun l -> Hashtbl.replace t.pinned l ()) (Addr.lines_of_range ~lo:addr ~hi:(addr + size));
      broadcast t ~seq ev
  | Event.Fence _ | Event.Epoch_begin _ | Event.Epoch_end _ | Event.Strand_begin _ | Event.Strand_end _
  | Event.Join_strand _ | Event.Call _ | Event.Annotation _ | Event.Program_end ->
      broadcast t ~seq ev

(* {2 Vectorized batch routing}

   Framed mode stages incoming events into a batch and routes the batch
   in two passes: pass 1 classifies every event into an int target code
   (single shard, broadcast, pinned-broadcast, drop), pass 2 appends to
   the per-shard frames driven by the codes alone — no per-event
   constructor dispatch on the append path. Classification only depends
   on router state ([registered], [track_all], [pinned]) that fast
   events never mutate, so a classified run makes decisions identical
   to the scalar [route] loop; events that DO mutate routing state
   (registrations, and stores that stall and pin lines) end the run and
   take the scalar path at their exact stream position. *)

let code_broadcast = -1
let code_drop = -2
let code_slow = -3

(* Target code for [ev], or [code_slow] when the event needs the scalar
   path. Codes [0..shards-1] send to that shard; [shards + i] broadcasts
   silently except at shard [i] (single pinned line). Mirrors [route] /
   [address_event] case for case. *)
let classify t ev =
  match ev with
  | Event.Store { addr; size; _ } | Event.Clf { addr; size; _ } -> (
      let lo = addr and hi = addr + size in
      if size <= 0 || not (in_registered t ~lo ~hi) then code_drop
      else
        match Addr.lines_of_range ~lo ~hi with
        | [ l ] -> if Hashtbl.mem t.pinned l then t.shards + owner t l else owner t l
        | l :: rest
          when (not (List.exists (Hashtbl.mem t.pinned) (l :: rest)))
               && List.for_all (fun l' -> owner t l' = owner t l) rest ->
            owner t l
        | _ -> code_slow)
  | Event.Tx_log _ -> 0
  | Event.Register_pmem _ | Event.Register_var _ -> code_slow
  | Event.Fence _ | Event.Epoch_begin _ | Event.Epoch_end _ | Event.Strand_begin _ | Event.Strand_end _
  | Event.Join_strand _ | Event.Call _ | Event.Annotation _ | Event.Program_end ->
      code_broadcast

let route_batch t evs codes n =
  let i = ref 0 in
  while !i < n do
    (* Pass 1: classify a run of fast events. *)
    let s = !i in
    let stop = ref (-1) in
    let k = ref s in
    while !stop < 0 && !k < n do
      let c = classify t evs.(!k) in
      if c = code_slow then stop := !k
      else begin
        codes.(!k) <- c;
        incr k
      end
    done;
    (* Pass 2: append the run to the per-shard frames, dispatching on
       the precomputed codes only. *)
    for j = s to !k - 1 do
      t.events <- t.events + 1;
      let seq = t.events in
      let c = codes.(j) in
      if c >= t.shards then broadcast t ~seq ~silent_except:(c - t.shards) evs.(j)
      else if c >= 0 then send t c ~seq ~silent:false evs.(j)
      else if c = code_broadcast then broadcast t ~seq evs.(j)
      (* [code_drop]: the event consumes a seq but is routed nowhere,
         exactly like the scalar unregistered/empty-range path. *)
    done;
    if !stop >= 0 then begin
      route t evs.(!stop);
      i := !stop + 1
    end
    else i := !k
  done

(* {2 Merging shard reports} *)

(* Since no location is ever clipped (spanning ranges are replicated
   whole, see [stalled_address_event]), a shard's findings are exactly a
   subset of the single-shard run's — replicated locations just report
   once per holding shard, byte-identically. Canonical sorting brings
   the replicas together; dropping equal neighbours leaves the
   single-shard multiset. *)
let dedup_replicas bugs =
  let rec go = function
    | a :: b :: rest when Bug.compare_canonical a b = 0 -> go (a :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go bugs

let dedup_by_kind_addr bugs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (b : Bug.t) ->
      let key = (b.Bug.kind, b.Bug.addr) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    bugs

let cap_per_kind limit bugs =
  let counts = Hashtbl.create 16 in
  List.filter
    (fun (b : Bug.t) ->
      let n = match Hashtbl.find_opt counts b.Bug.kind with None -> 0 | Some n -> n in
      Hashtbl.replace counts b.Bug.kind (n + 1);
      n < limit)
    bugs

(* Merge over the *union* of stat keys: a key present only in shards
   1..N-1 (a backend counter that never tripped on shard 0's partition,
   say) must not vanish from the merged report. Keys keep first-
   appearance order across the shard list — shard 0's order first, then
   later shards' extras — so the merged list is deterministic. Counters
   sum across shards; [avg_*] stats are taken from the first shard that
   carries them (shard 0 when present, whose fence cadence every shard
   shares). *)
let merge_stats reports =
  match reports with
  | [] -> []
  | _ ->
      let order = ref [] in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun r ->
          List.iter
            (fun (key, _) ->
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                order := key :: !order
              end)
            r.Bug.stats)
        reports;
      List.rev_map
        (fun key ->
          if String.length key >= 4 && String.sub key 0 4 = "avg_" then
            let v =
              List.fold_left
                (fun acc r -> match acc with Some _ -> acc | None -> List.assoc_opt key r.Bug.stats)
                None reports
            in
            (key, match v with Some v -> v | None -> 0.0)
          else
            ( key,
              List.fold_left
                (fun acc r -> acc +. (try List.assoc key r.Bug.stats with Not_found -> 0.0))
                0.0 reports ))
        !order

let merge_reports t reports =
  let bugs = List.concat_map (fun r -> r.Bug.bugs) reports in
  let bugs =
    List.sort Bug.compare_canonical bugs |> dedup_replicas |> dedup_by_kind_addr
    |> cap_per_kind t.max_bugs_per_kind
  in
  let failure = List.fold_left (fun acc r -> match acc with Some _ -> acc | None -> r.Bug.failure) None reports in
  {
    Bug.detector = (match reports with r :: _ -> r.Bug.detector | [] -> "sharded");
    bugs;
    events_processed = t.events;
    stats = merge_stats reports;
    failure;
  }

(* {2 The sink} *)

let finish t =
  match t.result with
  | Some r -> r
  | None ->
      (* Guarantee every worker observes the end of the trace even when
         the replayed file lacks an explicit Program_end (end-of-trace
         rules are idempotent on a second delivery). *)
      broadcast t ~seq:t.events Event.Program_end;
      let reports =
        if t.use_domains then begin
          (* Final transport sample + stop, per shard: the depth gauge
             is read before the stop lands (after the join it would
             always read an empty, drained queue). *)
          (match t.transport with
          | Per_event queues ->
              Array.iteri
                (fun i q ->
                  if Obs.Metrics.is_on t.metrics then
                    Obs.Metrics.max_set t.metrics ~labels:t.labels.(i) "shard_queue_depth_peak"
                      (float_of_int (Spsc.length q));
                  Spsc.push q Stop)
                queues
          | Framed rings ->
              Array.iteri
                (fun i ring ->
                  let n = Frame_ring.flush ring in
                  if n > 0 then on_publish t i ring n;
                  if Obs.Metrics.is_on t.metrics then
                    Obs.Metrics.max_set t.metrics ~labels:t.labels.(i) "shard_queue_depth_peak"
                      (float_of_int (Frame_ring.length ring));
                  Frame_ring.push_stop ring)
                rings);
          Array.to_list (Array.map Domain.join t.domains)
        end
        else begin
          flush_frames t;
          Array.to_list
            (Array.mapi
               (fun i w ->
                 let r = w.w_finish () in
                 match !(t.inline_failures.(i)) with
                 | None -> r
                 | Some msg -> { r with Bug.failure = Some msg })
               t.workers)
        end
      in
      (* The workers have joined (or ran inline): reading their
         registries is race-free, and absorbing them gives the router's
         registry whole-run truth including worker-domain series. *)
      Array.iter (fun wreg -> Obs.Metrics.absorb t.metrics (Obs.Metrics.snapshot wreg)) t.worker_metrics;
      let r = merge_reports t reports in
      t.result <- Some r;
      r

let create ~shards ?(queue_capacity = 1024) ?(frame_size = default_frame_size) ?(domains = true)
    ?(metrics = Obs.Metrics.disabled) ?(flightrec = Obs.Flightrec.disabled) ?worker_flightrecs
    ?(max_bugs_per_kind = 1000) make_worker =
  if shards < 1 then invalid_arg "Shard_router.create: shards must be >= 1";
  if frame_size < 0 then invalid_arg "Shard_router.create: frame_size must be >= 0";
  let worker_flightrecs =
    match worker_flightrecs with
    | None -> Array.init shards (fun _ -> Obs.Flightrec.disabled)
    | Some a ->
        if Array.length a <> shards then
          invalid_arg "Shard_router.create: worker_flightrecs must have one ring per shard";
        a
  in
  let workers = Array.init shards make_worker in
  let transport =
    if frame_size = 0 then
      Per_event (Array.init shards (fun _ -> Spsc.create ~capacity:queue_capacity))
    else begin
      (* [queue_capacity] stays denominated in events: the ring holds
         roughly that many in-flight events, split into frames. *)
      let slots = max 2 ((queue_capacity + frame_size - 1) / frame_size) in
      Framed (Array.init shards (fun _ -> Frame_ring.create ~slots ~frame_events:frame_size ()))
    end
  in
  let processed = Array.init shards (fun _ -> Atomic.make 0) in
  let worker_metrics =
    Array.init shards (fun _ -> Obs.Metrics.create ~enabled:(Obs.Metrics.is_on metrics) ())
  in
  if Obs.Metrics.is_on metrics then begin
    for i = 0 to shards - 1 do
      Obs.Metrics.inc metrics ~labels:(shard_label i) ~by:0 "shard_events_total";
      Obs.Metrics.inc worker_metrics.(i) ~labels:(shard_label i) ~by:0 "shard_worker_events_total"
    done;
    Obs.Metrics.inc metrics ~by:0 "shard_barrier_stalls_total"
  end;
  let t =
    {
      shards;
      workers;
      transport;
      pushed = Array.make shards 0;
      processed;
      domains = [||];
      inline_failures = Array.init shards (fun _ -> ref None);
      use_domains = domains;
      registered = [];
      track_all = true;
      pinned = Hashtbl.create 16;
      events = 0;
      metrics;
      worker_metrics;
      labels = Array.init shards shard_label;
      enc_acc = Array.make shards 0.0;
      flightrec;
      worker_flightrecs;
      max_bugs_per_kind;
      result = None;
    }
  in
  let t =
    if domains then
      {
        t with
        domains =
          Array.init shards (fun i ->
              match transport with
              | Per_event queues ->
                  Domain.spawn (fun () ->
                      worker_loop workers.(i) queues.(i) processed.(i) worker_metrics.(i) i)
              | Framed rings ->
                  Domain.spawn (fun () ->
                      framed_worker_loop workers.(i) rings.(i) processed.(i) worker_metrics.(i)
                        worker_flightrecs.(i) i));
      }
    else t
  in
  t

let sink ?name:(sink_name = "pmdebugger-sharded") ~shards ?queue_capacity ?frame_size ?domains ?metrics
    ?flightrec ?worker_flightrecs ?max_bugs_per_kind make_worker =
  let t =
    create ~shards ?queue_capacity ?frame_size ?domains ?metrics ?flightrec ?worker_flightrecs
      ?max_bugs_per_kind make_worker
  in
  match t.transport with
  | Per_event _ ->
      (* The per-event transport is the measured baseline: route each
         event as it arrives, no staging. *)
      Sink.make ~name:sink_name ~on_event:(fun ev -> route t ev) ~finish:(fun () -> finish t)
  | Framed _ ->
      (* Framed mode stages one frame's worth of events and routes the
         whole batch with the two-pass classify/append loop. Staged
         events are only parked between sink calls — the flush in
         [finish] runs before the end-of-trace broadcast, so workers
         still see the complete stream. *)
      let cap =
        match frame_size with Some n when n > 0 -> n | _ -> default_frame_size
      in
      let buf = Array.make cap Event.Program_end in
      let codes = Array.make cap 0 in
      let fill = ref 0 in
      let flush_batch () =
        if !fill > 0 then begin
          let n = !fill in
          fill := 0;
          route_batch t buf codes n
        end
      in
      Sink.make ~name:sink_name
        ~on_event:(fun ev ->
          buf.(!fill) <- ev;
          incr fill;
          if !fill = cap then flush_batch ())
        ~finish:(fun () ->
          flush_batch ();
          finish t)
