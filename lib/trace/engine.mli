(** The instrumentation engine — this repository's substitute for
    Valgrind.

    PM workloads are written against this API. Every operation updates
    the simulated PM persistency state ({!Pmem.State}) and, when
    instrumentation is enabled, forwards the corresponding {!Event} to
    every attached {!Sink}. Running a workload with instrumentation
    disabled gives the "native" execution time; attaching
    {!Sink.noop} gives the Nulgrind time; attaching a detector gives
    that tool's debugging time.

    The engine also provides the typed load/store accessors workloads
    use to implement real data structures in the simulated pool. Loads
    are not instrumented (the paper's tools intercept stores, CLF and
    fences only). *)

type t

val create : ?initial_size:int -> ?metrics:Obs.Metrics.t -> ?flightrec:Obs.Flightrec.t -> unit -> t
(** [metrics] (default the shared disabled registry) receives
    per-event-class dispatch counts and latencies
    ([engine_events_total{class}], [engine_dispatch_seconds{class}])
    and sink quarantine events
    ([engine_sinks_quarantined_total{sink}]). [flightrec] (default the
    shared disabled ring) records every dispatched event
    ([cat="dispatch"], virtual seq timestamps, [b] = address for
    stores/CLFs) and sink quarantines ([cat="quarantine"]). With both
    disabled the whole instrumentation costs one branch each per
    event. *)

val pm : t -> Pmem.State.t

val attach : t -> Sink.t -> unit
(** Constant-time; sinks receive events in attach order. *)

val detach_all : t -> unit

val sinks : t -> Sink.t list
(** Attached sinks in attach order (including quarantined ones). *)

val quarantined : t -> (string * string) list
(** [(sink name, exception text)] for every sink that raised from
    [on_event] or [finish] and was isolated. A quarantined sink stops
    receiving events; sibling sinks are unaffected. *)

val finish_all : t -> Bug.report list
(** Finish every attached sink and return their reports.

    {b Ordering guarantee.} The returned list is deterministic: one
    report per attached sink, in attach order, regardless of which
    sinks were quarantined or how each sink schedules its own work. In
    particular a {!Shard_router} sink contributes exactly one merged
    report at its own attach position, with its per-shard reports
    already folded in canonical order (sorted by
    {!Bug.compare_canonical}, then shard index as the tiebreak of the
    fold) — so drivers may rely on [List.nth (finish_all e) i]
    addressing the i-th attached sink stably. The shard merge and the
    regression tests rely on this.

    A sink whose [finish] raises yields an empty report instead of
    killing the run; any sink that was quarantined (during the run or
    at finish) gets the exception recorded in its report's [failure]
    field. *)

val set_instrumentation : t -> bool -> unit
(** When off, events are not dispatched (PM semantics still apply). *)

val metrics : t -> Obs.Metrics.t

val set_metrics : t -> Obs.Metrics.t -> unit
(** Swap the telemetry registry (e.g. to enable metrics after
    {!create}). *)

val flightrec : t -> Obs.Flightrec.t

val set_flightrec : t -> Obs.Flightrec.t -> unit
(** Swap the flight-recorder ring — how the serve pool points a
    worker's per-domain ring at each session's engine. *)

val seq : t -> int
(** Number of events emitted so far (sequence counter). *)

val set_tid : t -> int -> unit
(** Thread id stamped on subsequent events (default 0). *)

val emit : t -> Event.t -> unit
(** Emit a raw event (used by annotation layers). *)

(** {1 Instrumented PM operations} *)

val store_bytes : t -> addr:int -> bytes -> unit
val store_i64 : t -> addr:int -> int64 -> unit
val store_int : t -> addr:int -> int -> unit
val store_u8 : t -> addr:int -> int -> unit
val store_string : t -> addr:int -> string -> unit

val clwb : t -> addr:int -> unit
(** Writeback of the cache line containing [addr]. *)

val clflush : t -> addr:int -> unit
val clflushopt : t -> addr:int -> unit

val flush_range : t -> addr:int -> size:int -> unit
(** CLWB every line of the range (one event per line, as the hardware
    instruction stream would contain). *)

val sfence : t -> unit

val persist : t -> addr:int -> size:int -> unit
(** [flush_range] followed by [sfence] — the PMDK persist idiom. *)

(** {1 Unintercepted loads} *)

val load_i64 : t -> addr:int -> int64
val load_int : t -> addr:int -> int
val load_u8 : t -> addr:int -> int
val load_string : t -> addr:int -> len:int -> string
val load_bytes : t -> addr:int -> len:int -> bytes

(** {1 Annotations (Table 2) and markers} *)

val register_pmem : t -> base:int -> size:int -> unit
val epoch_begin : t -> unit
val epoch_end : t -> unit
val strand_begin : t -> strand:int -> unit
val strand_end : t -> strand:int -> unit
val join_strand : t -> unit
val tx_log : t -> obj_addr:int -> size:int -> unit
val register_var : t -> name:string -> addr:int -> size:int -> unit
val call_marker : t -> func:string -> unit
val annotate : t -> Event.annotation -> unit
val program_end : t -> unit

(** {1 Counters} *)

val counts : t -> (string * int) list
(** Event counts by class: stores, clfs, fences, others. *)

val n_stores : t -> int
val n_clfs : t -> int
val n_fences : t -> int
