(** Sharded, domain-parallel detection.

    A {!sink} fans the event stream out across [shards] workers, each
    owning its own bookkeeping and rule state, fed through bounded SPSC
    transports on OCaml Domains (or run inline for deterministic
    single-domain execution). Cache line [L] belongs to shard
    [L mod shards]; global events — fences, epochs, strands,
    registrations, program end — are broadcast to every worker in
    stream order, so shard [s] observes exactly the subsequence of the
    trace touching its lines, in trace order.

    {b Transport.} By default the hand-off is {e frame-batched}
    ({!Frame_ring}): the router encodes each routed event into the
    destination shard's flat staging buffer — no per-event allocation —
    and publishes a whole frame of [frame_size] events with one atomic
    store; the worker decodes and dispatches a frame at a time, bumping
    its progress counter once per frame. [frame_size = 0] selects the
    legacy per-event {!Spsc} hand-off (one boxed message and one
    sequentially consistent store per event), kept as the measured
    baseline: BENCH_pr5 showed it capping 4-shard throughput at 0.63×
    the single-shard run on a 4-core host. Cross-shard barriers flush
    every shard's partial frame before waiting on worker progress, so a
    stall observes every event routed before it; [finish] flushes the
    final partial frames before delivering the stop marker. Routing
    itself is vectorized over the staged batch: one classification pass
    turns a run of events into int target codes (shard id, broadcast,
    drop, pinned-broadcast) and a second pass dispatches the run
    without the per-event routing branch, stopping only at
    state-mutating events (registrations, pinning multi-line stores)
    that must go through the scalar path.

    Routing paths for an address event (store / CLF):
    - {b fast}: a single unpinned line (or several lines, all one
      shard's and unpinned) — pushed to that shard's queue whole;
    - {b broadcast}: a single pinned line (see below) — pushed to every
      shard, silently except at the line's owner, so every replica
      stays current but the rules fire once, on the one shard holding
      every location overlapping that line;
    - {b stall}: lines spanning owners, or touching a pinned line — a
      cross-shard barrier: the router flushes partial frames, drains
      every queue, pins the lines (stores only: the spanning location
      it creates is replicated on every shard from here on), scans the
      event's {e full} range synchronously on every shard, merges the
      observations and fires the rule exactly once
      ([shard_barrier_stalls_total] counts these).

    No location is ever clipped at a shard boundary — a location's
    extent is observable (a partial overwrite unflushes the whole slot;
    findings report slot extents), so a clipped slot would evolve away
    from the single-shard run. Ranges that would need clipping are
    replicated whole instead, and the merge drops the byte-identical
    replica findings.

    Lines of [Register_var] ranges are pinned up front, so the
    broadcast order/durability rules evaluate identical variable state
    everywhere. Contract: [Register_var] must precede stores to its
    range.

    {b Equality contract.} The merged report's findings, causal chains
    and failure status are byte-identical (per
    {!Bug.render_canonical}) to the [shards = 1] run — for {e every}
    transport and frame size, which the QCheck parity suites enforce —
    provided workers are created with [~walk_dedup:false] (the merge
    performs the pending-walk dedup globally), bookkeeping stays below
    the spill-tree merge threshold and the array capacity
    (reorganization coarsens provenance), and per-kind finding counts
    stay below [max_bugs_per_kind]. [stats] are merged over the union
    of keys across shards (summed per key; [avg_*] taken from the
    first shard carrying the key) rather than compared.

    The detector side of the contract is a {!worker} record
    ({!Pmdebugger.Detector.worker} builds one); this module has no
    dependency on any concrete detector. *)

type store_obs = { so_overlapped : bool; so_prior_seqs : int list }
(** The multiple-overwrites observation of one scan; [so_prior_seqs]
    sorted, deduped, capped at {!max_prior_seqs}. *)

type clf_obs = {
  co_matched : int;
  co_newly : int;
  co_redundant : (int * int * int * int) list;
      (** (addr, size, store seq, prior CLF seq) per already-flushed hit *)
}

type worker = {
  w_event : seq:int -> silent:bool -> Event.t -> unit;
      (** Process one whole event at stream position [seq]. [silent]
          runs all bookkeeping but suppresses findings (replica updates
          on non-owner shards). *)
  w_scan_store : seq:int -> tid:int -> lo:int -> hi:int -> store_obs;
      (** Stall path: track the store's full range and return the
          observation, without firing rules (but updating variable
          state). Called on every shard, from the router's domain,
          while the workers are drained. *)
  w_fire_store : seq:int -> addr:int -> size:int -> store_obs -> unit;
      (** Stall path: fire the store rules once with the merged
          observation and the event's full range. *)
  w_scan_clf : seq:int -> tid:int -> lo:int -> hi:int -> clf_obs;
  w_fire_clf : seq:int -> addr:int -> size:int -> clf_obs -> unit;
  w_finish : unit -> Bug.report;
}

val max_prior_seqs : int
(** Cap on merged [so_prior_seqs] (8) — the smallest seqs of the union
    across shards, which equals the single-shard cap because each
    shard's list is the smallest-8 of the locations it holds, every
    location is held by at least one shard, and replicas only
    contribute duplicate seqs, which the union drops. *)

val default_frame_size : int
(** Events per published frame when [frame_size] is not given (256). *)

val merge_store_obs : store_obs list -> store_obs

val merge_clf_obs : clf_obs list -> clf_obs

val sink :
  ?name:string ->
  shards:int ->
  ?queue_capacity:int
    (** per-shard in-flight events, default 1024. With the framed
        transport this sizes the ring at
        [queue_capacity / frame_size] frame slots (min 2). *) ->
  ?frame_size:int
    (** events per published frame, default {!default_frame_size};
        [0] selects the per-event transport. *) ->
  ?domains:bool
    (** default true: one OCaml Domain per shard. [false] runs every
        worker inline on the caller's domain — the framed transport
        still encodes, publishes and decodes through the ring (frames
        are consumed synchronously at each publish), so frame
        boundaries match the domain run while scheduling stays
        deterministic. *) ->
  ?metrics:Obs.Metrics.t
    (** router-side registry: receives [shard_events_total{shard}]
        (bumped per event, or per published frame by its event count),
        [shard_barrier_stalls_total] and
        [shard_queue_depth_peak{shard}] — sampled on each shard's own
        push cadence (first push, then every 64th; per published frame
        under the framed transport, in {e frames}), plus a final
        sample before the stop is delivered. Each worker domain also
        gets its own private registry (enabled iff this one is)
        recording [shard_worker_events_total{shard}] and a latency
        histogram — [shard_worker_event_seconds{shard}] per event, or
        [shard_worker_frame_seconds{shard}] per decoded frame under
        the framed transport; those are {!Obs.Metrics.absorb}ed into
        this registry when the sink finishes and the workers have
        joined, so the final snapshot is whole-run truth across
        domains.

        Under the framed transport the registries also attribute each
        frame's life to stages, all timed against {!Obs.Clock} (the
        clock {!Frame_ring} stamps frames with at publish):
        [shard_encode_seconds{shard}] (router side: per-event push time
        accumulated since the shard's previous publish, including any
        full-ring wait), [shard_frame_residency_seconds{shard}] (publish
        stamp → consume start: time in queue),
        [shard_frame_decode_seconds{shard}] and
        [shard_frame_dispatch_seconds{shard}] (frame total split into
        byte decoding vs. summed detector calls), and
        [shard_barrier_stall_seconds] (router side, per cross-shard
        barrier drain). All allocation-free on the hot path; with
        metrics disabled the entire attribution path is one branch per
        frame. *) ->
  ?flightrec:Obs.Flightrec.t
    (** router-side flight recorder: records a ["frame"/"publish"]
        instant per published frame ([a] = shard, [b] = frame index)
        and a ["barrier"/"stall"] instant per cross-shard barrier
        (metrics must be on for barriers). Default
        {!Obs.Flightrec.disabled}. *) ->
  ?worker_flightrecs:Obs.Flightrec.t array
    (** one ring per shard, mutated only on that worker's domain:
        records a ["frame"/"pop"] instant per consumed frame
        ([a] = shard, [b] = frame index). Because {!Frame_ring} is
        FIFO, (shard, index) names one frame end to end — the causal
        trace ({!Obs.Tracecat}) pairs publish/pop records into flow
        arrows. Length must equal [shards]. The caller retains the
        array for dumping after [finish]. *) ->
  ?max_bugs_per_kind:int (** cap re-applied to the merged report, default 1000 *) ->
  (int -> worker) ->
  Sink.t
(** [sink ~shards make_worker] spawns the pipeline; [make_worker i] is
    called once per shard on the caller's domain. The sink's [finish]
    delivers an end-of-trace to every worker (idempotent when the trace
    already carried [Program_end]), flushes partial frames, stops and
    joins the domains, and returns the merged canonical report. *)
