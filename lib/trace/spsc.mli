(** Bounded single-producer / single-consumer queue for the sharded
    detection pipeline: the router domain pushes, one shard worker
    domain pops. Exactly one domain may call {!push} and exactly one
    may call {!pop}/{!try_pop} over the queue's lifetime.

    Elements are published with a release/acquire-strength protocol
    (sequentially consistent atomics on the indices), so everything the
    producer wrote before {!push} is visible to the consumer after the
    matching pop. Blocking operations use a spin-then-sleep backoff
    that stays live even when domains outnumber cores. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to a power of two, minimum 2. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Approximate occupancy (racy but monotonic-consistent); feeds the
    queue-depth gauges. *)

val push : 'a t -> 'a -> unit
(** Blocks (backoff) while full. *)

val pop : 'a t -> 'a
(** Blocks (backoff) while empty. *)

val try_pop : 'a t -> 'a option
