(** Bounded single-producer / single-consumer queue for the sharded
    detection pipeline and the serving daemon: one domain pushes, one
    domain pops. Exactly one domain may call {!push}/{!try_push} and
    exactly one may call {!pop}/{!try_pop} over the queue's lifetime.

    Elements are published with a release/acquire-strength protocol
    (sequentially consistent atomics on the indices), so everything the
    producer wrote before {!push} is visible to the consumer after the
    matching pop. Blocking operations use a spin-then-sleep backoff
    whose sleep duration grows exponentially (1µs doubling up to 1ms),
    staying live even when domains outnumber cores without burning a
    core through a long stall.

    Either side may {!close} the queue (poison): a producer blocked in
    {!push} — or arriving later — raises {!Closed} instead of spinning
    on a dead consumer, and {!pop} drains already-published elements
    before raising {!Closed}. A consumer death can therefore never
    wedge a producer, provided the consumer closes the queue on exit
    (wrap the consumer loop in [Fun.protect ~finally:(fun () ->
    Spsc.close q)]).

    Delivery under a close race is exact: {!push}/{!try_push} re-check
    the closed flag immediately before and after the publishing store,
    so a push that returns normally is guaranteed observable by a
    consumer that drains after closing (as {!pop} does before raising),
    and a push racing the close raises {!Closed} instead of publishing
    an element nobody will ever pop. On such a raise the in-flight
    element's delivery is indeterminate — callers must treat {!Closed}
    as "the stream is torn down", not "exactly my element was
    dropped". *)

type 'a t

exception Closed
(** Raised by {!push}/{!try_push} on a closed queue, and by {!pop} on a
    closed {e and drained} queue. *)

val create : capacity:int -> 'a t
(** Capacity is rounded up to a power of two, minimum 2. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Approximate occupancy, clamped to [0..capacity] — the head/tail
    index pair is read non-atomically and can tear against a concurrent
    push or pop, so transient values outside the ring's possible
    occupancy are clipped rather than reported. Feeds the queue-depth
    gauges; never use it for control flow. *)

val close : 'a t -> unit
(** Poison the queue. Idempotent; callable from either side (or a
    third party). Elements already published remain poppable. *)

val is_closed : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Blocks (backoff) while full. Raises {!Closed} if the queue is — or
    becomes, at any point up to and including the publish — closed. *)

val try_push : 'a t -> 'a -> bool
(** [false] when full, never blocks. Raises {!Closed} when closed, with
    the same pre/post-publish re-checks as {!push}. *)

val pop : 'a t -> 'a
(** Blocks (backoff) while empty. Raises {!Closed} once the queue is
    closed and drained. *)

val try_pop : 'a t -> 'a option
(** [None] when currently empty (closed or not); never raises. *)
