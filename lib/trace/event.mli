(** The instrumented event stream.

    This is the exact vocabulary a Valgrind-based PMDebugger receives
    from binary instrumentation (§6 of the paper): memory stores to
    registered PM, cache-line writebacks, fences, the annotation events
    of Table 2 (register_pmem, epoch and strand markers), transaction
    log writes (for the redundant-logging rule), named-variable
    registration and function-call markers (for the configuration-driven
    "no order guarantee" rule), and PMTest-style assertion annotations
    (consumed only by the PMTest baseline). *)

type clf_kind = Clwb | Clflush | Clflushopt

type annotation =
  | Assert_durable of { addr : int; size : int }
      (** PMTest TX_CHECKER-style: assert the range is persisted here. *)
  | Assert_ordered of { first_addr : int; first_size : int; then_addr : int; then_size : int }
      (** PMTest: assert [first] persisted before [then]. *)
  | Assert_fresh of { addr : int; size : int }
      (** PMTest: assert the range is not yet tracked (no prior
          unpersisted store), catching multiple overwrites. *)

type t =
  | Store of { addr : int; size : int; tid : int }
  | Clf of { addr : int; size : int; kind : clf_kind; tid : int }
  | Fence of { tid : int }
  | Register_pmem of { base : int; size : int }
  | Epoch_begin of { tid : int }
  | Epoch_end of { tid : int }
  | Strand_begin of { tid : int; strand : int }
  | Strand_end of { tid : int; strand : int }
  | Join_strand of { tid : int }
  | Tx_log of { obj_addr : int; size : int; tid : int }
      (** An undo-log append covering the object at [obj_addr]. *)
  | Register_var of { name : string; addr : int; size : int }
      (** Maps a configuration variable name to its runtime address
          (symbol table / intercepted allocation, §4.5). *)
  | Call of { func : string; tid : int }
      (** Application-function marker used by order-guarantee rules. *)
  | Annotation of annotation
  | Program_end

val pp : Format.formatter -> t -> unit

val clf_kind_name : clf_kind -> string
(** ["clwb"], ["clflush"] or ["clflushopt"]. *)

val is_store : t -> bool
val is_clf : t -> bool
val is_fence : t -> bool

val tid : t -> int
(** Thread id of the event; 0 for global events. *)

val class_name : t -> string
(** Event class for metric labels: ["store"], ["clf"], ["fence"],
    ["register"], ["epoch"], ["strand"], ["tx_log"], ["call"],
    ["annotation"] or ["program_end"]. *)
