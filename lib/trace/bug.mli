(** Bug vocabulary shared by every detector and by the ground-truth
    dataset. The ten kinds are the columns of Table 6. *)

type kind =
  | No_durability  (** location not persisted after its last write *)
  | Multiple_overwrites  (** overwrite before durability is guaranteed *)
  | No_order_guarantee  (** configured persist order X-before-Y violated *)
  | Redundant_flush  (** same store flushed more than once before fence *)
  | Flush_nothing  (** CLF persisting no tracked prior store *)
  | Redundant_logging  (** object logged multiple times, updated once *)
  | Lack_durability_in_epoch  (** epoch ends with unpersisted stores *)
  | Redundant_epoch_fence  (** more than one fence inside an epoch *)
  | Lack_ordering_in_strands  (** cross-strand persist order violation *)
  | Cross_failure_semantic  (** post-failure execution reads inconsistent data *)

val all_kinds : kind list

val kind_rank : kind -> int
(** Position in {!all_kinds} — the kind component of the canonical bug
    order used by the shard merge. *)

val kind_name : kind -> string

val pp_kind : Format.formatter -> kind -> unit

(** One link of a report's causal history: an engine event (by its
    monotonically increasing dispatch sequence number) that contributed
    to the violation — the store that created the tracked interval, the
    CLF that covered (or redundantly re-covered) it, the fence it
    crossed unpersisted, the event at which the rule fired. *)
type cause = {
  c_seq : int;  (** 1-based dispatch sequence number of the event *)
  c_class : string;  (** {!Pmtrace.Event.class_name} of that event *)
  c_addr : int;  (** address involved at that step, or -1 *)
  c_size : int;
  c_note : string;  (** human-readable role, e.g. "never flushed" *)
}

val cause : ?addr:int -> ?size:int -> ?note:string -> cls:string -> int -> cause

type t = {
  kind : kind;
  addr : int;  (** primary address involved, or -1 *)
  size : int;
  seq : int;  (** event sequence number at detection time *)
  detail : string;
  chain : cause list;
      (** causal history, canonical: strictly increasing [c_seq], no
          negative seqs (normalized by {!make}) *)
}

val make : ?addr:int -> ?size:int -> ?seq:int -> ?detail:string -> ?chain:cause list -> kind -> t
(** [chain] is normalized: causes with negative seqs are dropped, the
    rest are sorted ascending and deduplicated by seq (later entry
    wins), so [t.chain] is strictly increasing by construction. *)

val pp : Format.formatter -> t -> unit

val pp_cause : Format.formatter -> cause -> unit

val pp_chain : Format.formatter -> cause list -> unit
(** Vertical list of causes, one per line ("(no causal history)" when
    empty) — the body of [pmdb explain]. *)

type report = {
  detector : string;
  bugs : t list;
  events_processed : int;
  stats : (string * float) list;
      (** detector-specific counters, e.g. tree sizes, reorganizations *)
  failure : string option;
      (** [Some msg] when the sink raised mid-run and was quarantined by
          the engine: [msg] is the exception text and the report covers
          only the trace prefix the sink processed before failing. *)
}

val compare_cause : cause -> cause -> int

val compare_canonical : t -> t -> int
(** Total order on findings — (seq, kind rank, addr, size, detail,
    chain) — independent of detection-internal iteration orders. The
    sharded merge sorts with this; parity tests compare reports ordered
    by it. *)

val render_canonical : report -> string
(** Byte-exact text of everything the shard-equality contract covers:
    detector name, event count, failure status and every finding with
    its full causal chain — excluding [stats], which legitimately
    differ between bookkeeping layouts. Two runs are equivalent exactly
    when their canonical renderings are equal. *)

val empty_report : string -> report

val count_kind : report -> kind -> int

val has_kind : report -> kind -> bool

val kinds_found : report -> kind list

val pp_report : Format.formatter -> report -> unit
