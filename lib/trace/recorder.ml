type trace = Event.t array

let recording_sink () =
  let buf = ref [] and n = ref 0 in
  let sink =
    Sink.make ~name:"recorder"
      ~on_event:(fun ev ->
        buf := ev :: !buf;
        incr n)
      ~finish:(fun () -> { (Bug.empty_report "recorder") with events_processed = !n })
  in
  let extract () =
    let arr = Array.make !n Event.Program_end in
    let rec fill i = function
      | [] -> ()
      | ev :: rest ->
          arr.(i) <- ev;
          fill (i - 1) rest
    in
    fill (!n - 1) !buf;
    arr
  in
  (sink, extract)

let record_on engine run =
  let sink, extract = recording_sink () in
  Engine.attach engine sink;
  run engine;
  Engine.detach_all engine;
  extract ()

let record run =
  let engine = Engine.create () in
  record_on engine run

let replay trace sink =
  Array.iter sink.Sink.on_event trace;
  sink.Sink.finish ()

let replay_stream produce sink =
  produce sink.Sink.on_event;
  sink.Sink.finish ()

let replay_timed ?(repeats = 1) trace mk =
  let best = ref infinity in
  let report = ref (Bug.empty_report "replay") in
  for _ = 1 to max 1 repeats do
    let sink = mk () in
    let t0 = Unix.gettimeofday () in
    let r = replay trace sink in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    report := r
  done;
  (!report, !best)

let filter trace pred = Array.of_list (List.filter pred (Array.to_list trace))

let interleave_round_robin traces =
  let arrs = Array.of_list traces in
  let idx = Array.map (fun _ -> 0) arrs in
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 arrs in
  let out = Array.make total Event.Program_end in
  let k = ref 0 in
  let remaining () = Array.exists (fun i -> i >= 0) (Array.mapi (fun j i -> if i < Array.length arrs.(j) then i else -1) idx) in
  while remaining () do
    Array.iteri
      (fun j i ->
        if i < Array.length arrs.(j) then begin
          out.(!k) <- arrs.(j).(i);
          incr k;
          idx.(j) <- i + 1
        end)
      idx
  done;
  out

let stats trace =
  let stores = ref 0 and clfs = ref 0 and fences = ref 0 and other = ref 0 in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Store _ -> incr stores
      | Event.Clf _ -> incr clfs
      | Event.Fence _ -> incr fences
      | _ -> incr other)
    trace;
  [ ("stores", !stores); ("clfs", !clfs); ("fences", !fences); ("other", !other); ("total", Array.length trace) ]
