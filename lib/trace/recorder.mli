(** Trace recording and replay.

    To compare detectors fairly (and to time them excluding workload
    cost), a workload is run once with a recording sink; the captured
    event array is then replayed into each detector. *)

type trace = Event.t array

val recording_sink : unit -> Sink.t * (unit -> trace)
(** A sink that appends every event; the closure extracts the trace. *)

val record : (Engine.t -> unit) -> trace
(** [record run] executes [run] on a fresh engine with a recording sink
    and returns the captured trace. *)

val record_on : Engine.t -> (Engine.t -> unit) -> trace
(** Same but on a caller-provided engine (so PM contents survive). *)

val replay : trace -> Sink.t -> Bug.report
(** Feed every event to the sink, then [finish]. *)

val replay_stream : ((Event.t -> unit) -> unit) -> Sink.t -> Bug.report
(** [replay_stream produce sink] feeds the events [produce] emits into
    the sink as they are produced — the constant-memory dual of
    {!replay} for event sources that never materialize a trace array
    (e.g. {!Trace_io.iter_file}). *)

val replay_timed : ?repeats:int -> trace -> (unit -> Sink.t) -> Bug.report * float
(** [replay_timed trace mk] replays into fresh sinks [repeats] times
    (default 1) and returns the last report with the minimum wall-clock
    seconds for one replay. *)

val filter : trace -> (Event.t -> bool) -> trace

val interleave_round_robin : trace list -> trace
(** Merge per-thread traces by alternating one event from each, the
    deterministic model of a multi-threaded run under Valgrind. *)

val stats : trace -> (string * int) list
