let kind_to_string = function Event.Clwb -> "clwb" | Event.Clflush -> "clflush" | Event.Clflushopt -> "clflushopt"

let kind_of_string = function
  | "clwb" -> Some Event.Clwb
  | "clflush" -> Some Event.Clflush
  | "clflushopt" -> Some Event.Clflushopt
  | _ -> None

let event_to_line = function
  | Event.Store { addr; size; tid } -> Printf.sprintf "store %d %d %d" tid addr size
  | Event.Clf { addr; size; kind; tid } -> Printf.sprintf "clf %s %d %d %d" (kind_to_string kind) tid addr size
  | Event.Fence { tid } -> Printf.sprintf "fence %d" tid
  | Event.Register_pmem { base; size } -> Printf.sprintf "register_pmem %d %d" base size
  | Event.Epoch_begin { tid } -> Printf.sprintf "epoch_begin %d" tid
  | Event.Epoch_end { tid } -> Printf.sprintf "epoch_end %d" tid
  | Event.Strand_begin { tid; strand } -> Printf.sprintf "strand_begin %d %d" tid strand
  | Event.Strand_end { tid; strand } -> Printf.sprintf "strand_end %d %d" tid strand
  | Event.Join_strand { tid } -> Printf.sprintf "join_strand %d" tid
  | Event.Tx_log { obj_addr; size; tid } -> Printf.sprintf "tx_log %d %d %d" tid obj_addr size
  | Event.Register_var { name; addr; size } -> Printf.sprintf "register_var %d %d %s" addr size name
  | Event.Call { func; tid } -> Printf.sprintf "call %d %s" tid func
  | Event.Annotation (Event.Assert_durable { addr; size }) -> Printf.sprintf "assert_durable %d %d" addr size
  | Event.Annotation (Event.Assert_ordered { first_addr; first_size; then_addr; then_size }) ->
      Printf.sprintf "assert_ordered %d %d %d %d" first_addr first_size then_addr then_size
  | Event.Annotation (Event.Assert_fresh { addr; size }) -> Printf.sprintf "assert_fresh %d %d" addr size
  | Event.Program_end -> "program_end"

let event_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
    let int s = int_of_string_opt s in
    let bad () = Error (Printf.sprintf "cannot parse event %S" line) in
    match words with
    | [ "store"; tid; addr; size ] -> (
        match (int tid, int addr, int size) with
        | Some tid, Some addr, Some size -> Ok (Some (Event.Store { addr; size; tid }))
        | _ -> bad ())
    | [ "clf"; kind; tid; addr; size ] -> (
        match (kind_of_string kind, int tid, int addr, int size) with
        | Some kind, Some tid, Some addr, Some size -> Ok (Some (Event.Clf { addr; size; kind; tid }))
        | _ -> bad ())
    | [ "fence"; tid ] -> ( match int tid with Some tid -> Ok (Some (Event.Fence { tid })) | None -> bad ())
    | [ "register_pmem"; base; size ] -> (
        match (int base, int size) with
        | Some base, Some size -> Ok (Some (Event.Register_pmem { base; size }))
        | _ -> bad ())
    | [ "epoch_begin"; tid ] -> (
        match int tid with Some tid -> Ok (Some (Event.Epoch_begin { tid })) | None -> bad ())
    | [ "epoch_end"; tid ] -> ( match int tid with Some tid -> Ok (Some (Event.Epoch_end { tid })) | None -> bad ())
    | [ "strand_begin"; tid; strand ] -> (
        match (int tid, int strand) with
        | Some tid, Some strand -> Ok (Some (Event.Strand_begin { tid; strand }))
        | _ -> bad ())
    | [ "strand_end"; tid; strand ] -> (
        match (int tid, int strand) with
        | Some tid, Some strand -> Ok (Some (Event.Strand_end { tid; strand }))
        | _ -> bad ())
    | [ "join_strand"; tid ] -> (
        match int tid with Some tid -> Ok (Some (Event.Join_strand { tid })) | None -> bad ())
    | [ "tx_log"; tid; obj_addr; size ] -> (
        match (int tid, int obj_addr, int size) with
        | Some tid, Some obj_addr, Some size -> Ok (Some (Event.Tx_log { obj_addr; size; tid }))
        | _ -> bad ())
    | "register_var" :: addr :: size :: name_parts when name_parts <> [] -> (
        match (int addr, int size) with
        | Some addr, Some size ->
            Ok (Some (Event.Register_var { name = String.concat " " name_parts; addr; size }))
        | _ -> bad ())
    | "call" :: tid :: func_parts when func_parts <> [] -> (
        match int tid with
        | Some tid -> Ok (Some (Event.Call { func = String.concat " " func_parts; tid }))
        | None -> bad ())
    | [ "assert_durable"; addr; size ] -> (
        match (int addr, int size) with
        | Some addr, Some size -> Ok (Some (Event.Annotation (Event.Assert_durable { addr; size })))
        | _ -> bad ())
    | [ "assert_ordered"; a; asz; b; bsz ] -> (
        match (int a, int asz, int b, int bsz) with
        | Some first_addr, Some first_size, Some then_addr, Some then_size ->
            Ok (Some (Event.Annotation (Event.Assert_ordered { first_addr; first_size; then_addr; then_size })))
        | _ -> bad ())
    | [ "assert_fresh"; addr; size ] -> (
        match (int addr, int size) with
        | Some addr, Some size -> Ok (Some (Event.Annotation (Event.Assert_fresh { addr; size })))
        | _ -> bad ())
    | [ "program_end" ] -> Ok (Some Event.Program_end)
    | _ -> bad ()
  end

let to_string trace =
  let buf = Buffer.create (Array.length trace * 16) in
  Array.iter
    (fun ev ->
      Buffer.add_string buf (event_to_line ev);
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> (
        match event_of_line line with
        | Ok None -> go acc (lineno + 1) rest
        | Ok (Some ev) -> go (ev :: acc) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go [] 1 lines

type lenient = { trace : Event.t array; skipped : (int * string) list; synthesized_end : bool }

let of_string_lenient ?(metrics = Obs.Metrics.disabled) ?(synthesize_end = true) text =
  let lines = String.split_on_char '\n' text in
  let events = ref [] and n = ref 0 and skipped = ref [] in
  List.iteri
    (fun i line ->
      match event_of_line line with
      | Ok None -> ()
      | Ok (Some ev) ->
          events := ev :: !events;
          incr n
      | Error msg -> skipped := (i + 1, msg) :: !skipped)
    lines;
  Obs.Metrics.inc metrics ~by:!n "trace_io_lines_parsed_total";
  Obs.Metrics.inc metrics ~by:(List.length !skipped) "trace_io_lines_skipped_total";
  let truncated = match !events with Event.Program_end :: _ -> false | _ -> true in
  let synthesized_end = synthesize_end && truncated in
  if synthesized_end then begin
    events := Event.Program_end :: !events;
    incr n
  end;
  let trace = Array.make (max !n 1) Event.Program_end in
  let rec fill i = function
    | [] -> ()
    | ev :: rest ->
        trace.(i) <- ev;
        fill (i - 1) rest
  in
  fill (!n - 1) !events;
  let trace = if !n = 0 then [||] else trace in
  { trace; skipped = List.rev !skipped; synthesized_end }

(* All file I/O below closes its channel on any exit path: a write
   failure or a short read must not leak the descriptor. *)

let save path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc (to_string trace))

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try Ok (really_input_string ic (in_channel_length ic))
          with
          | Sys_error msg -> Error msg
          | End_of_file -> Error (Printf.sprintf "%s: truncated read" path))

let load path = Result.bind (read_file path) of_string

let load_lenient ?metrics ?synthesize_end path =
  Result.map (of_string_lenient ?metrics ?synthesize_end) (read_file path)
