let kind_to_string = function Event.Clwb -> "clwb" | Event.Clflush -> "clflush" | Event.Clflushopt -> "clflushopt"

let kind_of_string = function
  | "clwb" -> Some Event.Clwb
  | "clflush" -> Some Event.Clflush
  | "clflushopt" -> Some Event.Clflushopt
  | _ -> None

let event_to_line = function
  | Event.Store { addr; size; tid } -> Printf.sprintf "store %d %d %d" tid addr size
  | Event.Clf { addr; size; kind; tid } -> Printf.sprintf "clf %s %d %d %d" (kind_to_string kind) tid addr size
  | Event.Fence { tid } -> Printf.sprintf "fence %d" tid
  | Event.Register_pmem { base; size } -> Printf.sprintf "register_pmem %d %d" base size
  | Event.Epoch_begin { tid } -> Printf.sprintf "epoch_begin %d" tid
  | Event.Epoch_end { tid } -> Printf.sprintf "epoch_end %d" tid
  | Event.Strand_begin { tid; strand } -> Printf.sprintf "strand_begin %d %d" tid strand
  | Event.Strand_end { tid; strand } -> Printf.sprintf "strand_end %d %d" tid strand
  | Event.Join_strand { tid } -> Printf.sprintf "join_strand %d" tid
  | Event.Tx_log { obj_addr; size; tid } -> Printf.sprintf "tx_log %d %d %d" tid obj_addr size
  | Event.Register_var { name; addr; size } -> Printf.sprintf "register_var %d %d %s" addr size name
  | Event.Call { func; tid } -> Printf.sprintf "call %d %s" tid func
  | Event.Annotation (Event.Assert_durable { addr; size }) -> Printf.sprintf "assert_durable %d %d" addr size
  | Event.Annotation (Event.Assert_ordered { first_addr; first_size; then_addr; then_size }) ->
      Printf.sprintf "assert_ordered %d %d %d %d" first_addr first_size then_addr then_size
  | Event.Annotation (Event.Assert_fresh { addr; size }) -> Printf.sprintf "assert_fresh %d %d" addr size
  | Event.Program_end -> "program_end"

let event_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
    let int s = int_of_string_opt s in
    let bad () = Error (Printf.sprintf "cannot parse event %S" line) in
    match words with
    | [ "store"; tid; addr; size ] -> (
        match (int tid, int addr, int size) with
        | Some tid, Some addr, Some size -> Ok (Some (Event.Store { addr; size; tid }))
        | _ -> bad ())
    | [ "clf"; kind; tid; addr; size ] -> (
        match (kind_of_string kind, int tid, int addr, int size) with
        | Some kind, Some tid, Some addr, Some size -> Ok (Some (Event.Clf { addr; size; kind; tid }))
        | _ -> bad ())
    | [ "fence"; tid ] -> ( match int tid with Some tid -> Ok (Some (Event.Fence { tid })) | None -> bad ())
    | [ "register_pmem"; base; size ] -> (
        match (int base, int size) with
        | Some base, Some size -> Ok (Some (Event.Register_pmem { base; size }))
        | _ -> bad ())
    | [ "epoch_begin"; tid ] -> (
        match int tid with Some tid -> Ok (Some (Event.Epoch_begin { tid })) | None -> bad ())
    | [ "epoch_end"; tid ] -> ( match int tid with Some tid -> Ok (Some (Event.Epoch_end { tid })) | None -> bad ())
    | [ "strand_begin"; tid; strand ] -> (
        match (int tid, int strand) with
        | Some tid, Some strand -> Ok (Some (Event.Strand_begin { tid; strand }))
        | _ -> bad ())
    | [ "strand_end"; tid; strand ] -> (
        match (int tid, int strand) with
        | Some tid, Some strand -> Ok (Some (Event.Strand_end { tid; strand }))
        | _ -> bad ())
    | [ "join_strand"; tid ] -> (
        match int tid with Some tid -> Ok (Some (Event.Join_strand { tid })) | None -> bad ())
    | [ "tx_log"; tid; obj_addr; size ] -> (
        match (int tid, int obj_addr, int size) with
        | Some tid, Some obj_addr, Some size -> Ok (Some (Event.Tx_log { obj_addr; size; tid }))
        | _ -> bad ())
    | "register_var" :: addr :: size :: name_parts when name_parts <> [] -> (
        match (int addr, int size) with
        | Some addr, Some size ->
            Ok (Some (Event.Register_var { name = String.concat " " name_parts; addr; size }))
        | _ -> bad ())
    | "call" :: tid :: func_parts when func_parts <> [] -> (
        match int tid with
        | Some tid -> Ok (Some (Event.Call { func = String.concat " " func_parts; tid }))
        | None -> bad ())
    | [ "assert_durable"; addr; size ] -> (
        match (int addr, int size) with
        | Some addr, Some size -> Ok (Some (Event.Annotation (Event.Assert_durable { addr; size })))
        | _ -> bad ())
    | [ "assert_ordered"; a; asz; b; bsz ] -> (
        match (int a, int asz, int b, int bsz) with
        | Some first_addr, Some first_size, Some then_addr, Some then_size ->
            Ok (Some (Event.Annotation (Event.Assert_ordered { first_addr; first_size; then_addr; then_size })))
        | _ -> bad ())
    | [ "assert_fresh"; addr; size ] -> (
        match (int addr, int size) with
        | Some addr, Some size -> Ok (Some (Event.Annotation (Event.Assert_fresh { addr; size })))
        | _ -> bad ())
    | [ "program_end" ] -> Ok (Some Event.Program_end)
    | _ -> bad ()
  end

let to_string trace =
  let buf = Buffer.create (Array.length trace * 16) in
  Array.iter
    (fun ev ->
      Buffer.add_string buf (event_to_line ev);
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Streaming core: both parsers fold over a pull-based line producer,  *)
(* so a string in memory and a multi-GB file on disk go through the    *)
(* exact same skip / error-position / synthesize-program_end logic.    *)
(* ------------------------------------------------------------------ *)

type stream_stats = {
  events : int;
  skipped_lines : (int * string) list;
  synthesized : bool;
}

let fold_lines_strict next ~init ~f =
  let rec go lineno acc =
    match next () with
    | None -> Ok acc
    | Some line -> (
        match event_of_line line with
        | Ok None -> go (lineno + 1) acc
        | Ok (Some ev) -> go (lineno + 1) (f acc ev)
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 init

let fold_lines_lenient ~metrics ~synthesize_end ~on_skip next ~init ~f =
  let rec go lineno acc parsed skipped nskip last_was_end =
    match next () with
    | None ->
        Obs.Metrics.inc metrics ~by:parsed "trace_io_lines_parsed_total";
        Obs.Metrics.inc metrics ~by:nskip "trace_io_lines_skipped_total";
        let synthesized = synthesize_end && not last_was_end in
        let acc, parsed = if synthesized then (f acc Event.Program_end, parsed + 1) else (acc, parsed) in
        (acc, { events = parsed; skipped_lines = List.rev skipped; synthesized })
    | Some line -> (
        match event_of_line line with
        | Ok None -> go (lineno + 1) acc parsed skipped nskip last_was_end
        | Ok (Some ev) -> go (lineno + 1) (f acc ev) (parsed + 1) skipped nskip (ev = Event.Program_end)
        | Error msg ->
            on_skip lineno msg;
            go (lineno + 1) acc parsed ((lineno, msg) :: skipped) (nskip + 1) last_was_end)
  in
  go 1 init 0 [] 0 false

let lines_of_string text =
  let len = String.length text in
  let pos = ref 0 in
  fun () ->
    if !pos >= len then None
    else
      match String.index_from_opt text !pos '\n' with
      | Some i ->
          let line = String.sub text !pos (i - !pos) in
          pos := i + 1;
          Some line
      | None ->
          let line = String.sub text !pos (len - !pos) in
          pos := len;
          Some line

let lines_of_channel ic () = match input_line ic with line -> Some line | exception End_of_file -> None

let rev_array acc = Array.of_list (List.rev acc)

let push acc ev = ev :: acc

let of_string text = Result.map rev_array (fold_lines_strict (lines_of_string text) ~init:[] ~f:push)

type lenient = { trace : Event.t array; skipped : (int * string) list; synthesized_end : bool }

let lenient_of_fold (acc, stats) =
  { trace = rev_array acc; skipped = stats.skipped_lines; synthesized_end = stats.synthesized }

let of_string_lenient ?(metrics = Obs.Metrics.disabled) ?(synthesize_end = true) text =
  lenient_of_fold
    (fold_lines_lenient ~metrics ~synthesize_end
       ~on_skip:(fun _ _ -> ())
       (lines_of_string text) ~init:[] ~f:push)

(* All file I/O below closes its channel on any exit path: a write
   failure or a read error must not leak the descriptor. Files are read
   one line at a time — memory use is bounded by the longest line, never
   by the trace length. *)

let with_in_file path f =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> try f (lines_of_channel ic) with Sys_error msg -> Error msg)

let fold_file ?(metrics = Obs.Metrics.disabled) ?(synthesize_end = true) ?(on_skip = fun _ _ -> ()) path ~init ~f =
  with_in_file path (fun next -> Ok (fold_lines_lenient ~metrics ~synthesize_end ~on_skip next ~init ~f))

let iter_file ?metrics ?synthesize_end ?on_skip path ~f =
  Result.map snd (fold_file ?metrics ?synthesize_end ?on_skip path ~init:() ~f:(fun () ev -> f ev))

let fold_file_strict path ~init ~f = with_in_file path (fun next -> fold_lines_strict next ~init ~f)

let iter_file_strict path ~f = fold_file_strict path ~init:() ~f:(fun () ev -> f ev)

let save_stream path produce =
  let oc = open_out_bin path in
  let n = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      produce (fun ev ->
          output_string oc (event_to_line ev);
          output_char oc '\n';
          incr n));
  !n

(* Binary mode, like every reader here: save/load roundtrips are
   byte-identical cross-platform (text mode would translate newlines on
   Windows and corrupt offsets against open_in_bin readers). *)
let save path trace = ignore (save_stream path (fun emit -> Array.iter emit trace))

let load path = Result.map rev_array (fold_file_strict path ~init:[] ~f:push)

let load_lenient ?metrics ?synthesize_end path =
  Result.map lenient_of_fold (fold_file ?metrics ?synthesize_end path ~init:[] ~f:push)
