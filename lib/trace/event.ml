type clf_kind = Clwb | Clflush | Clflushopt

type annotation =
  | Assert_durable of { addr : int; size : int }
  | Assert_ordered of { first_addr : int; first_size : int; then_addr : int; then_size : int }
  | Assert_fresh of { addr : int; size : int }

type t =
  | Store of { addr : int; size : int; tid : int }
  | Clf of { addr : int; size : int; kind : clf_kind; tid : int }
  | Fence of { tid : int }
  | Register_pmem of { base : int; size : int }
  | Epoch_begin of { tid : int }
  | Epoch_end of { tid : int }
  | Strand_begin of { tid : int; strand : int }
  | Strand_end of { tid : int; strand : int }
  | Join_strand of { tid : int }
  | Tx_log of { obj_addr : int; size : int; tid : int }
  | Register_var of { name : string; addr : int; size : int }
  | Call of { func : string; tid : int }
  | Annotation of annotation
  | Program_end

let clf_kind_name = function Clwb -> "clwb" | Clflush -> "clflush" | Clflushopt -> "clflushopt"

let pp ppf = function
  | Store { addr; size; tid } -> Format.fprintf ppf "store[t%d] %d+%d" tid addr size
  | Clf { addr; size; kind; tid } -> Format.fprintf ppf "%s[t%d] %d+%d" (clf_kind_name kind) tid addr size
  | Fence { tid } -> Format.fprintf ppf "sfence[t%d]" tid
  | Register_pmem { base; size } -> Format.fprintf ppf "register_pmem %d+%d" base size
  | Epoch_begin { tid } -> Format.fprintf ppf "epoch_begin[t%d]" tid
  | Epoch_end { tid } -> Format.fprintf ppf "epoch_end[t%d]" tid
  | Strand_begin { tid; strand } -> Format.fprintf ppf "strand_begin[t%d] s%d" tid strand
  | Strand_end { tid; strand } -> Format.fprintf ppf "strand_end[t%d] s%d" tid strand
  | Join_strand { tid } -> Format.fprintf ppf "join_strand[t%d]" tid
  | Tx_log { obj_addr; size; tid } -> Format.fprintf ppf "tx_log[t%d] %d+%d" tid obj_addr size
  | Register_var { name; addr; size } -> Format.fprintf ppf "register_var %s=%d+%d" name addr size
  | Call { func; tid } -> Format.fprintf ppf "call[t%d] %s" tid func
  | Annotation (Assert_durable { addr; size }) -> Format.fprintf ppf "assert_durable %d+%d" addr size
  | Annotation (Assert_ordered { first_addr; then_addr; _ }) ->
      Format.fprintf ppf "assert_ordered %d<%d" first_addr then_addr
  | Annotation (Assert_fresh { addr; size }) -> Format.fprintf ppf "assert_fresh %d+%d" addr size
  | Program_end -> Format.fprintf ppf "program_end"

let is_store = function Store _ -> true | _ -> false

let is_clf = function Clf _ -> true | _ -> false

let is_fence = function Fence _ -> true | _ -> false

let tid = function
  | Store { tid; _ }
  | Clf { tid; _ }
  | Fence { tid }
  | Epoch_begin { tid }
  | Epoch_end { tid }
  | Strand_begin { tid; _ }
  | Strand_end { tid; _ }
  | Join_strand { tid }
  | Tx_log { tid; _ }
  | Call { tid; _ } ->
      tid
  | Register_pmem _ | Register_var _ | Annotation _ | Program_end -> 0

let class_name = function
  | Store _ -> "store"
  | Clf _ -> "clf"
  | Fence _ -> "fence"
  | Register_pmem _ | Register_var _ -> "register"
  | Epoch_begin _ | Epoch_end _ -> "epoch"
  | Strand_begin _ | Strand_end _ | Join_strand _ -> "strand"
  | Tx_log _ -> "tx_log"
  | Call _ -> "call"
  | Annotation _ -> "annotation"
  | Program_end -> "program_end"
