type kind =
  | No_durability
  | Multiple_overwrites
  | No_order_guarantee
  | Redundant_flush
  | Flush_nothing
  | Redundant_logging
  | Lack_durability_in_epoch
  | Redundant_epoch_fence
  | Lack_ordering_in_strands
  | Cross_failure_semantic

let all_kinds =
  [
    No_durability;
    Multiple_overwrites;
    No_order_guarantee;
    Redundant_flush;
    Flush_nothing;
    Redundant_logging;
    Lack_durability_in_epoch;
    Redundant_epoch_fence;
    Lack_ordering_in_strands;
    Cross_failure_semantic;
  ]

let kind_rank k =
  let rec idx i = function [] -> i | x :: rest -> if x = k then i else idx (i + 1) rest in
  idx 0 all_kinds

let kind_name = function
  | No_durability -> "no-durability-guarantee"
  | Multiple_overwrites -> "multiple-overwrites"
  | No_order_guarantee -> "no-order-guarantee"
  | Redundant_flush -> "redundant-flush"
  | Flush_nothing -> "flush-nothing"
  | Redundant_logging -> "redundant-logging"
  | Lack_durability_in_epoch -> "lack-durability-in-epoch"
  | Redundant_epoch_fence -> "redundant-epoch-fence"
  | Lack_ordering_in_strands -> "lack-ordering-in-strands"
  | Cross_failure_semantic -> "cross-failure-semantic"

let pp_kind ppf k = Format.pp_print_string ppf (kind_name k)

type cause = { c_seq : int; c_class : string; c_addr : int; c_size : int; c_note : string }

let cause ?(addr = -1) ?(size = 0) ?(note = "") ~cls seq = { c_seq = seq; c_class = cls; c_addr = addr; c_size = size; c_note = note }

(* Chains are canonical by construction: ascending, one cause per seq,
   no placeholder (negative) seqs. Rule code can therefore append causes
   in whatever order the bookkeeping yields them. *)
let normalize_chain chain =
  let sorted = List.stable_sort (fun a b -> compare a.c_seq b.c_seq) (List.filter (fun c -> c.c_seq >= 0) chain) in
  let rec dedup = function
    | a :: (b :: _ as rest) when a.c_seq = b.c_seq -> dedup rest (* keep the later, usually richer, note *)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

type t = { kind : kind; addr : int; size : int; seq : int; detail : string; chain : cause list }

let make ?(addr = -1) ?(size = 0) ?(seq = -1) ?(detail = "") ?(chain = []) kind =
  { kind; addr; size; seq; detail; chain = normalize_chain chain }

let pp_cause ppf c =
  Format.fprintf ppf "#%d %s" c.c_seq c.c_class;
  if c.c_addr >= 0 then Format.fprintf ppf " @@%d+%d" c.c_addr c.c_size;
  if c.c_note <> "" then Format.fprintf ppf " — %s" c.c_note

let pp_chain ppf = function
  | [] -> Format.fprintf ppf "(no causal history)"
  | chain ->
      Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,") pp_cause ppf chain

let pp ppf b =
  Format.fprintf ppf "%a" pp_kind b.kind;
  if b.addr >= 0 then Format.fprintf ppf " @@%d+%d" b.addr b.size;
  if b.seq >= 0 then Format.fprintf ppf " (seq %d)" b.seq;
  if b.detail <> "" then Format.fprintf ppf ": %s" b.detail

let compare_cause a b =
  compare (a.c_seq, a.c_class, a.c_addr, a.c_size, a.c_note) (b.c_seq, b.c_class, b.c_addr, b.c_size, b.c_note)

(* Total order independent of detection-internal iteration orders
   (hashtable layouts, fire order within one event): the shard merge
   sorts with this, and parity tests rely on it. *)
let compare_canonical a b =
  let c = compare (a.seq, kind_rank a.kind, a.addr, a.size, a.detail) (b.seq, kind_rank b.kind, b.addr, b.size, b.detail) in
  if c <> 0 then c else List.compare compare_cause a.chain b.chain

type report = {
  detector : string;
  bugs : t list;
  events_processed : int;
  stats : (string * float) list;
  failure : string option;
      (* When the sink raised mid-run and was quarantined by the engine,
         the exception text; the report then covers the prefix of the
         trace the sink saw before failing. *)
}

let empty_report detector = { detector; bugs = []; events_processed = 0; stats = []; failure = None }

let count_kind r k = List.length (List.filter (fun b -> b.kind = k) r.bugs)

let has_kind r k = List.exists (fun b -> b.kind = k) r.bugs

let kinds_found r = List.filter (has_kind r) all_kinds

(* Byte-exact rendering of everything the equality contract covers:
   findings (with full chains), event count and failure status — but not
   [stats], which legitimately differ between bookkeeping layouts (a
   sharded run has N smaller trees, not one big one). *)
let render_canonical r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s events=%d failure=%s\n" r.detector r.events_processed
                           (match r.failure with None -> "-" | Some m -> m));
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "%s addr=%d size=%d seq=%d detail=%s\n" (kind_name b.kind) b.addr b.size b.seq b.detail);
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "  cause seq=%d class=%s addr=%d size=%d note=%s\n" c.c_seq c.c_class c.c_addr c.c_size
               c.c_note))
        b.chain)
    r.bugs;
  Buffer.contents buf

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s: %d bug(s) in %d events@," r.detector (List.length r.bugs) r.events_processed;
  (match r.failure with
  | Some msg -> Format.fprintf ppf "  QUARANTINED: %s@," msg
  | None -> ());
  List.iter (fun b -> Format.fprintf ppf "  %a@," pp b) r.bugs;
  Format.fprintf ppf "@]"
