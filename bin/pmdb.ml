(* pmdb — command-line front end for the PMDebugger reproduction.

     pmdb run -w b_tree -n 1000                 debug a workload
     pmdb run -w memcached -d pmemcheck -n 500  with another detector
     pmdb run -w b_tree --metrics out.json      with a telemetry snapshot
     pmdb stats -w hashmap_tx -n 1000           run + print the metric table
     pmdb characterize -w hashmap_tx -n 1000    Fig. 2 metrics for one trace
     pmdb bugs                                  run the 78-case dataset
     pmdb list                                  available workloads *)

open Cmdliner
open Pmtrace
module W = Workloads.Workload

let detector_names = [ "pmdebugger"; "pmemcheck"; "pmtest"; "xfdetector"; "nulgrind" ]
let backend_names = [ "hybrid"; "flat" ]

(* The bookkeeping backend is a factory, so each shard gets its own
   instance. Per-shard detectors run on worker domains where the
   (non-thread-safe) metrics registry must stay disabled — the router
   owns the shared registry. *)
let backend_for ~metrics = function
  | "hybrid" -> None
  | "flat" -> Some (Pmdebugger.Flat_store.backend ~metrics ())
  | other ->
      failwith (Printf.sprintf "unknown backend %S (expected one of: %s)" other (String.concat ", " backend_names))

(* [heatmap] feeds the plain pmdebugger path only: shard detectors run
   on worker domains where a shared single-domain table would race. *)
let sink_for ?(metrics = Obs.Metrics.disabled) ?(heatmap = Obs.Heatmap.disabled) ?flightrec
    ?worker_flightrecs ?(shards = 0) ?(frame_size = Shard_router.default_frame_size) ?(backend = "hybrid")
    name model config =
  match name with
  | "pmdebugger" when shards >= 1 ->
      Shard_router.sink ~shards ~frame_size ~metrics ?flightrec ?worker_flightrecs (fun _shard ->
          let backend = backend_for ~metrics:Obs.Metrics.disabled backend in
          Pmdebugger.Detector.worker (Pmdebugger.Detector.create ~model ~config ?backend ~walk_dedup:false ()))
  | "pmdebugger" ->
      let backend = backend_for ~metrics backend in
      Pmdebugger.Detector.sink (Pmdebugger.Detector.create ~model ~config ?backend ~metrics ~heatmap ())
  | _ when shards >= 1 -> failwith (Printf.sprintf "--shards requires -d pmdebugger (got %S)" name)
  | _ when backend <> "hybrid" -> failwith (Printf.sprintf "--backend requires -d pmdebugger (got %S)" name)
  | "pmemcheck" -> Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())
  | "pmtest" -> Baselines.Pmtest.sink (Baselines.Pmtest.create ())
  | "xfdetector" -> Baselines.Xfdetector.sink (Baselines.Xfdetector.create ~config ())
  | "nulgrind" -> Baselines.Nulgrind.sink ()
  | other -> failwith (Printf.sprintf "unknown detector %S (expected one of: %s)" other (String.concat ", " detector_names))

(* --metrics FILE: every command records into [reg] (enabled only when
   the flag is given) and the snapshot plus the run's spans land in FILE
   as stable JSON — or on stdout when FILE is "-". [spans_on] forces
   span recording without a metrics file (--trace-out needs the phases
   even when no snapshot is written). *)
let with_metrics ?(spans_on = false) file f =
  Obs.Clock.set Unix.gettimeofday;
  let reg = match file with None -> Obs.Metrics.disabled | Some _ -> Obs.Metrics.create () in
  let spans = if file <> None || spans_on then Obs.Span.create () else Obs.Span.disabled in
  let result = f reg spans in
  (match file with
  | None -> ()
  | Some path ->
      let json =
        match Obs.Metrics.to_json reg with
        | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ [ ("spans", Obs.Span.to_json spans) ])
        | other -> other
      in
      if path = "-" then print_endline (Obs.Json.to_string ~indent:true json)
      else begin
        Obs.Json.to_file path json;
        Printf.printf "metrics written to %s\n" path
      end);
  result

let print_quarantined engine =
  match Engine.quarantined engine with
  | [] -> ()
  | qs ->
      Printf.printf "%d sink(s) quarantined:\n" (List.length qs);
      List.iter (fun (name, msg) -> Printf.printf "  %s: %s\n" name msg) qs

let workload_arg =
  let doc = "Workload to run (see `pmdb list`)." in
  Arg.(value & opt string "b_tree" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let n_arg =
  let doc = "Number of operations." in
  Arg.(value & opt int 1000 & info [ "n"; "ops" ] ~docv:"N" ~doc)

let detector_arg =
  let doc = "Detector: pmdebugger, pmemcheck, pmtest, xfdetector or nulgrind." in
  Arg.(value & opt string "pmdebugger" & info [ "d"; "detector" ] ~docv:"TOOL" ~doc)

let config_arg =
  let doc = "Persist-order configuration file (see Pmdebugger.Order_config)." in
  Arg.(value & opt (some file) None & info [ "c"; "config" ] ~docv:"FILE" ~doc)

let annotate_arg =
  let doc = "Emit the PMTest-style annotations the workload carries." in
  Arg.(value & flag & info [ "annotate" ] ~doc)

let max_bugs_arg =
  let doc = "Print at most this many findings." in
  Arg.(value & opt int 25 & info [ "max-print" ] ~docv:"K" ~doc)

let load_config = function
  | None -> Pmdebugger.Order_config.empty
  | Some path -> (
      match Pmdebugger.Order_config.load path with
      | Ok cfg -> cfg
      | Error msg -> failwith ("config: " ^ msg))

let print_findings ~max_print report =
  let shown = ref 0 in
  List.iter
    (fun b ->
      if !shown < max_print then begin
        incr shown;
        Format.printf "  %a@." Bug.pp b
      end)
    report.Bug.bugs;
  let total = List.length report.Bug.bugs in
  if total > max_print then Printf.printf "  ... and %d more\n" (total - max_print);
  Printf.printf "%d finding(s); kinds: %s\n" total
    (String.concat ", " (List.map Bug.kind_name (Bug.kinds_found report)))

let run_workload_reports ?(shards = 0) ?(frame_size = Shard_router.default_frame_size) ?(backend = "hybrid")
    ?flightrec ?worker_flightrecs ~metrics ~spans workload n detector config annotate =
  let spec = Workloads.Registry.find_exn workload in
  let config = load_config config in
  let engine = Engine.create ~metrics () in
  Engine.attach engine
    (sink_for ~metrics ?flightrec ?worker_flightrecs ~shards ~frame_size ~backend detector spec.W.model config);
  let t0 = Unix.gettimeofday () in
  Obs.Span.record spans ~attrs:[ ("workload", workload) ] "run" (fun () ->
      spec.W.run (W.params ~annotate ~n ()) engine);
  let dt = Unix.gettimeofday () -. t0 in
  (* finish_all rather than finishing the sink by hand: a detector that
     raised mid-run is quarantined and reported, not propagated. *)
  let reports = Obs.Span.record spans "finish" (fun () -> Engine.finish_all engine) in
  (engine, reports, dt)

(* --trace-out FILE: flight-recorder rings for the router and each
   shard worker; after the run they merge with the CLI's coarse spans
   into one causal Perfetto document (Obs.Tracecat). With --shards 0
   there is no pipeline to record — the dump still carries the phase
   spans on a "phases" track. *)
let trace_rings ~trace_out ~shards =
  match trace_out with
  | None -> (None, None)
  | Some _ ->
      ( Some (Obs.Flightrec.create ~capacity:8192 ()),
        Some (Array.init (max shards 0) (fun _ -> Obs.Flightrec.create ~capacity:8192 ())) )

let dump_causal_trace ~trace_out ~spans ~flightrec ~worker_flightrecs =
  match trace_out with
  | None -> ()
  | Some path ->
      let rings =
        (match flightrec with Some r -> [ ("router", r) ] | None -> [])
        @
        match worker_flightrecs with
        | Some rs -> Array.to_list (Array.mapi (fun i r -> (Printf.sprintf "shard-%d" i, r)) rs)
        | None -> []
      in
      Obs.Json.to_file path (Obs.Tracecat.merge ~spans:(Obs.Span.finished spans) rings);
      Printf.printf "causal trace written to %s (open in ui.perfetto.dev)\n" path

let run_cmd workload n detector config annotate max_print shards frame_size backend metrics_file trace_out =
  with_metrics ~spans_on:(trace_out <> None) metrics_file (fun metrics spans ->
      let flightrec, worker_flightrecs = trace_rings ~trace_out ~shards in
      let engine, reports, dt =
        run_workload_reports ?flightrec ?worker_flightrecs ~shards ~frame_size ~backend ~metrics ~spans
          workload n detector config annotate
      in
      dump_causal_trace ~trace_out ~spans ~flightrec ~worker_flightrecs;
      List.iter
        (fun report ->
          Printf.printf "%s on %s (n=%d): %d event(s) in %.3fs\n" report.Bug.detector workload n
            report.Bug.events_processed dt;
          (match report.Bug.failure with
          | Some msg -> Printf.printf "  QUARANTINED: %s\n" msg
          | None -> ());
          print_findings ~max_print report;
          List.iter (fun (k, v) -> Printf.printf "  stat %-28s %.2f\n" k v) report.Bug.stats)
        reports;
      print_quarantined engine)

let characterize_cmd workload n json =
  let spec = Workloads.Registry.find_exn workload in
  let trace = Recorder.record (fun e -> spec.W.run (W.params ~n ()) e) in
  if json then begin
    (* The JSON report also carries the trace's raw dispatch-latency
       profile (a noop-sink replay): p50/p95/p99 of per-event dispatch,
       the same quantiles the bench reports per tool. *)
    let p = Harness.Timing.dispatch_profile trace (Sink.noop "charz") in
    let doc =
      match Charz.characterization_json trace with
      | Obs.Json.Obj fields ->
          Obs.Json.Obj
            (fields
            @ [
                ( "dispatch",
                  Obs.Json.Obj
                    [
                      ("p50_s", Obs.Json.Float p.Harness.Timing.p50_s);
                      ("p95_s", Obs.Json.Float p.Harness.Timing.p95_s);
                      ("p99_s", Obs.Json.Float p.Harness.Timing.p99_s);
                      ("samples", Obs.Json.Int p.Harness.Timing.samples);
                    ] );
              ])
      | other -> other
    in
    print_endline (Obs.Json.to_string doc)
  end
  else begin
    let h = Charz.distance_histogram trace in
    let c = Charz.writeback_classes trace in
    let m = Charz.instruction_mix trace in
    Printf.printf "%s (n=%d): %d events\n" workload n (Array.length trace);
    Printf.printf "  stores %d, writebacks %d, fences %d (store share %.1f%%)\n" m.Charz.stores m.Charz.writebacks
      m.Charz.fences
      (100.0 *. Charz.store_fraction m);
    Printf.printf "  store-to-fence distance: d=1 %.1f%%, d<=3 %.1f%%, never persisted %d\n"
      (100.0 *. Charz.fraction_at_most h 1)
      (100.0 *. Charz.fraction_at_most h 3)
      h.Charz.never_persisted;
    Printf.printf "  CLF intervals: %.1f%% collective (%d collective / %d dispersed)\n"
      (100.0 *. Charz.collective_fraction c)
      c.Charz.collective c.Charz.dispersed
  end

let bugs_cmd metrics_file =
  with_metrics metrics_file (fun metrics spans ->
      let results = Obs.Span.record spans "bugbench" Bugbench.Eval.evaluate_all in
      List.iter
        (fun r ->
          let tool = Bugbench.Eval.tool_name r.Bugbench.Eval.tool in
          Obs.Metrics.inc metrics ~labels:[ ("tool", tool) ] ~by:r.Bugbench.Eval.detected_total
            "bugbench_detected_total";
          Obs.Metrics.inc metrics ~labels:[ ("tool", tool) ] ~by:r.Bugbench.Eval.case_total "bugbench_cases_total";
          Printf.printf "%-12s %d/%d detected, %d kinds, FN %.1f%%, false positives %d\n" tool
            r.Bugbench.Eval.detected_total r.Bugbench.Eval.case_total r.Bugbench.Eval.kinds_covered
            (100.0 *. r.Bugbench.Eval.false_negative_rate)
            (List.length r.Bugbench.Eval.false_positives))
        results)

let record_cmd workload n annotate out =
  let spec = Workloads.Registry.find_exn workload in
  (* Events go to disk as they are emitted: recording never holds the
     trace in memory, so -n can be as large as the disk allows. *)
  let count =
    Trace_io.save_stream out (fun emit ->
        let engine = Engine.create () in
        Engine.attach engine (Sink.make ~name:"save" ~on_event:emit ~finish:(fun () -> Bug.empty_report "save"));
        spec.W.run (W.params ~annotate ~n ()) engine;
        Engine.detach_all engine)
  in
  Printf.printf "recorded %d event(s) from %s (n=%d) to %s\n" count workload n out

(* Session errors share one exit-code convention between offline replay
   and the daemon (see Serve.Status): 0 ok, 2 trace/protocol error,
   3 detector quarantined, 4 evicted, 5 idle timeout, 6 daemon
   shutdown. *)
let exit_for_report report =
  match report.Bug.failure with
  | Some _ -> exit (Serve.Status.exit_code Serve.Status.Detector_error)
  | None -> ()

let session_name_for file =
  let base = Filename.remove_extension (Filename.basename file) in
  let sane =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> c | _ -> '_')
      base
  in
  if Serve.Wire.name_ok sane then sane else "session"

(* Replay through a running daemon. stdout is byte-identical to the
   offline replay of the same healthy trace — the CI soak job diffs the
   two — and the frame's status picks the exit code. *)
let replay_daemon_cmd ~socket ~file ~max_print ~lenient =
  match Serve.Client.replay_file ~socket ~name:(session_name_for file) ~lenient file with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Ok frame ->
      (match frame.Serve.Wire.report with
      | Some report ->
          Printf.printf "%s replayed %d event(s) from %s\n" report.Bug.detector report.Bug.events_processed file;
          (match report.Bug.failure with
          | Some msg -> Printf.printf "  QUARANTINED: %s\n" msg
          | None -> ());
          print_findings ~max_print report
      | None -> ());
      if frame.Serve.Wire.skipped > 0 then
        Printf.eprintf "warning: %s: %d malformed line(s) skipped by the daemon\n" file frame.Serve.Wire.skipped;
      if frame.Serve.Wire.synthesized_end then
        Printf.eprintf "warning: %s: truncated trace, synthesized program_end\n" file;
      (match (frame.Serve.Wire.status, frame.Serve.Wire.error) with
      | Serve.Status.Ok, _ -> ()
      | status, error ->
          Printf.eprintf "error: session %s: %s\n" (Serve.Status.name status)
            (Option.value error ~default:"(no detail)"));
      exit (Serve.Status.exit_code frame.Serve.Wire.status)

let replay_cmd file detector config max_print lenient daemon shards frame_size backend metrics_file trace_out =
  match daemon with
  | Some _ when trace_out <> None ->
      Printf.eprintf "error: --trace-out needs a local replay (the daemon dumps its own via serve --trace-out)\n";
      exit 1
  | Some socket -> replay_daemon_cmd ~socket ~file ~max_print ~lenient
  | None ->
  with_metrics ~spans_on:(trace_out <> None) metrics_file (fun metrics spans ->
      let config = load_config config in
      let flightrec, worker_flightrecs = trace_rings ~trace_out ~shards in
      (* Replays have no live PM state: the model only gates rule
         selection, so strict covers all shared rules. Dispatching through
         an engine (instead of calling the sink directly) keeps the
         quarantine and telemetry behaviour of `pmdb run`. The trace
         streams straight from disk into the engine — constant memory
         regardless of trace size. *)
      let engine = Engine.create ~metrics () in
      Engine.attach engine
        (sink_for ~metrics ?flightrec ?worker_flightrecs ~shards ~frame_size ~backend detector
           Pmdebugger.Detector.Strict config);
      Obs.Span.record spans ~attrs:[ ("file", file) ] "replay" (fun () ->
          if lenient then (
            match
              Trace_io.iter_file ~metrics
                ~on_skip:(fun lineno msg -> Printf.eprintf "warning: %s:%d: skipped: %s\n" file lineno msg)
                file ~f:(Engine.emit engine)
            with
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit (Serve.Status.exit_code Serve.Status.Trace_error)
            | Ok stats ->
                if stats.Trace_io.synthesized then
                  Printf.eprintf "warning: %s: truncated trace, synthesized program_end\n" file)
          else
            match Trace_io.iter_file_strict file ~f:(Engine.emit engine) with
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit (Serve.Status.exit_code Serve.Status.Trace_error)
            | Ok () -> ());
      let reports = Obs.Span.record spans "finish" (fun () -> Engine.finish_all engine) in
      dump_causal_trace ~trace_out ~spans ~flightrec ~worker_flightrecs;
      List.iter
        (fun report ->
          Printf.printf "%s replayed %d event(s) from %s\n" report.Bug.detector report.Bug.events_processed file;
          (match report.Bug.failure with
          | Some msg -> Printf.printf "  QUARANTINED: %s\n" msg
          | None -> ());
          print_findings ~max_print report)
        reports;
      print_quarantined engine;
      List.iter exit_for_report reports)

(* ---------------------------------------------------------------- *)
(* crash-explore: replay a program prefix-by-prefix and test every   *)
(* derivable crash image against a recovery predicate.               *)
(* ---------------------------------------------------------------- *)

let find_bugbench_case id =
  let all = Bugbench.Cases.buggy @ Bugbench.Cases.clean in
  match List.find_opt (fun (c : Bugbench.Cases.t) -> c.Bugbench.Cases.id = id) all with
  | None -> failwith (Printf.sprintf "unknown bugbench case %S (see `pmdb bugs`)" id)
  | Some c -> c

let crash_explore_cmd case trace_file workload n expect fences_only max_images bisect strategy budget
    invariants_out seed metrics_file =
  with_metrics metrics_file @@ fun metrics spans ->
  let recovery_of_expect () =
    let expect =
      match expect with
      | Some e -> e
      | None -> failwith "need --case ID, or --trace FILE / -w WORKLOAD with --expect PREDICATE"
    in
    let p = match Faultinject.Predicate.parse expect with Ok p -> p | Error msg -> failwith ("--expect: " ^ msg) in
    Faultinject.Predicate.recovery p
  in
  let steps, recovery =
    match (case, trace_file) with
    | Some _, Some _ -> failwith "--case and --trace are mutually exclusive"
    | Some id, None ->
        let c = find_bugbench_case id in
        let recovery =
          match c.Bugbench.Cases.recovery with
          | Some r -> r
          | None -> failwith (Printf.sprintf "case %S has no recovery predicate; pass --expect" id)
        in
        (Faultinject.Replay.capture c.Bugbench.Cases.run, recovery)
    | None, Some path -> (
        (* The one place a trace file is pulled into memory: bisection
           needs random access over the steps for prefix replay. *)
        match Faultinject.Replay.materialize_file path with
        | Error msg -> failwith msg
        | Ok (steps, stats) ->
            List.iter
              (fun (lineno, msg) -> Printf.eprintf "warning: %s:%d: skipped: %s\n" path lineno msg)
              stats.Trace_io.skipped_lines;
            (steps, recovery_of_expect ()))
    | None, None ->
        let spec = Workloads.Registry.find_exn workload in
        (Faultinject.Replay.capture (fun e -> spec.W.run (W.params ~n ()) e), recovery_of_expect ())
  in
  let module CE = Faultinject.Crash_explore in
  let what = match (case, trace_file) with Some id, _ -> id | None, Some path -> path | None, None -> workload in
  let strategy_name = strategy in
  let strategy =
    match CE.strategy_of_string strategy with Ok s -> s | Error msg -> failwith ("--strategy: " ^ msg)
  in
  let budget = if budget <= 0 then None else Some budget in
  let boundaries = if fences_only then CE.Fences_only else CE.Every_op in
  let write_invariants plan used =
    match invariants_out with
    | None -> ()
    | Some path ->
        let rep = match used with Some r -> r | None -> CE.plan_invariants plan in
        Obs.Json.to_file path (Infer.Invariant.to_json rep);
        Printf.printf "invariants: %d candidate(s) -> %s\n"
          (List.length rep.Infer.Invariant.invariants)
          path
  in
  if bisect then begin
    let f =
      Obs.Span.record spans "bisect" (fun () ->
          if strategy_name = "exhaustive" then CE.bisect ~max_images ~metrics ~recovery steps
          else CE.bisect ~max_images ~metrics ~strategy ~recovery steps)
    in
    (match f with
    | None -> Printf.printf "%s: no crash image fails recovery (%d steps explored)\n" what (Array.length steps)
    | Some f ->
        Format.printf "%s: minimal failing prefix ends at event #%d (%a): %d/%d crash image(s) fail recovery@."
          what f.CE.index Faultinject.Replay.pp f.CE.step f.CE.failing_images f.CE.images_checked);
    if invariants_out <> None then
      write_invariants (CE.make_plan ~boundaries ~max_images ?budget ~seed steps) None
  end
  else begin
    let plan = CE.make_plan ~boundaries ~max_images ?budget ~seed steps in
    let o = Obs.Span.record spans "explore" (fun () -> CE.run ~metrics ~recovery plan strategy) in
    let r = o.CE.result in
    Printf.printf "%s: %d boundar%s checked, %d crash image(s) tested\n" what r.CE.boundaries_checked
      (if r.CE.boundaries_checked = 1 then "y" else "ies")
      r.CE.images_checked;
    (* The strategy line only appears for non-default runs: the default
       exhaustive report stays byte-identical to the pre-strategy CLI. *)
    if strategy_name <> "exhaustive" || budget <> None then
      Printf.printf "  strategy %s: %d/%d scheduled boundar%s explored, %d skipped%s\n" o.CE.strategy
        o.CE.explored o.CE.scheduled
        (if o.CE.scheduled = 1 then "y" else "ies")
        o.CE.skipped
        (match budget with None -> "" | Some b -> Printf.sprintf " (budget %d images)" b);
    List.iter
      (fun (f : CE.failure) ->
        Format.printf "  event #%d (%a): %d/%d image(s) fail recovery@." f.CE.index Faultinject.Replay.pp f.CE.step
          f.CE.failing_images f.CE.images_checked)
      r.CE.failures;
    if r.CE.failures = [] then Printf.printf "  all crash images satisfy recovery\n"
    else Printf.printf "%d failing boundar%s\n" (List.length r.CE.failures)
      (if List.length r.CE.failures = 1 then "y" else "ies");
    write_invariants plan o.CE.invariants_used
  end

(* ---------------------------------------------------------------- *)
(* inject: mutate a workload's trace and re-run the detector.        *)
(* ---------------------------------------------------------------- *)

let parse_target s =
  let fail () = failwith (Printf.sprintf "bad --target %S (expected nth:K, every:K, last, all or random:P)" s) in
  match String.split_on_char ':' s with
  | [ "last" ] -> Faultinject.Injector.Last
  | [ "all" ] -> Faultinject.Injector.All
  | [ "nth"; k ] -> (try Faultinject.Injector.Nth (int_of_string k) with _ -> fail ())
  | [ "every"; k ] -> (try Faultinject.Injector.Every (int_of_string k) with _ -> fail ())
  | [ "random"; p ] -> (try Faultinject.Injector.Random (float_of_string p) with _ -> fail ())
  | _ -> fail ()

let print_matrix () =
  let module S = Faultinject.Sensitivity in
  let module I = Faultinject.Injector in
  let rows = S.run_matrix () in
  Printf.printf "%-14s" "workload";
  List.iter (fun f -> Printf.printf " %-16s" (I.fault_name f)) S.core_faults;
  print_newline ();
  List.iter
    (fun (r : S.row) ->
      Printf.printf "%-14s" r.S.workload;
      List.iter
        (fun (c : S.cell) ->
          let mark =
            if c.S.injections = 0 then "no-site"
            else if c.S.detected_by = [] then "MISSED"
            else String.concat "+" (List.map Bug.kind_name c.S.detected_by)
          in
          Printf.printf " %-16s" mark)
        r.S.cells;
      if r.S.baseline_kinds <> [] then Printf.printf "  (baseline dirty!)";
      print_newline ())
    rows;
  Printf.printf "matrix %s\n" (if S.matrix_ok rows then "OK: every fault class detected on every workload" else "FAILED");
  if not (S.matrix_ok rows) then exit 1

let inject_cmd matrix workload n fault target seed detector config max_print metrics_file =
  if matrix then print_matrix ()
  else
    with_metrics metrics_file @@ fun metrics spans ->
    let module I = Faultinject.Injector in
    let fault =
      match I.fault_of_string fault with
      | Some f -> f
      | None ->
          failwith
            (Printf.sprintf "unknown --fault %S (expected one of: %s)" fault
               (String.concat ", " (List.map I.fault_name I.all_faults)))
    in
    let plan = { I.fault; target = parse_target target; seed } in
    let spec = Workloads.Registry.find_exn workload in
    let steps = Faultinject.Replay.capture (fun e -> spec.W.run (W.params ~n ()) e) in
    let mutated, injections = I.apply plan steps in
    Obs.Metrics.inc metrics ~by:(List.length injections)
      ~labels:[ ("fault", I.fault_name fault) ]
      "inject_injections_total";
    Printf.printf "%s (n=%d): %d step(s), %d injection(s) of %s\n" workload n (Array.length steps)
      (List.length injections) (I.fault_name fault);
    List.iter (fun inj -> Format.printf "  %a@." I.pp_injection inj) injections;
    let config = load_config config in
    let sink = sink_for ~metrics detector spec.W.model config in
    let report =
      Obs.Span.record spans "inject-replay" (fun () ->
          Recorder.replay (Faultinject.Replay.events_of_steps mutated) sink)
    in
    Printf.printf "%s on mutated trace:\n" report.Bug.detector;
    print_findings ~max_print report

(* ---------------------------------------------------------------- *)
(* explain / timeline: resolve a trace from a case, a file or a      *)
(* workload, then pretty-print causal chains or export a Perfetto    *)
(* timeline of it.                                                   *)
(* ---------------------------------------------------------------- *)

let events_of_source ?(annotate = false) ~case ~trace_file ~workload ~n () =
  match (case, trace_file) with
  | Some _, Some _ -> failwith "--case and --trace are mutually exclusive"
  | Some id, None ->
      let c = find_bugbench_case id in
      ( id,
        c.Bugbench.Cases.model,
        Faultinject.Replay.events_of_steps (Faultinject.Replay.capture c.Bugbench.Cases.run) )
  | None, Some path -> (
      match Faultinject.Replay.materialize_file path with
      | Error msg -> failwith msg
      | Ok (steps, stats) ->
          List.iter
            (fun (lineno, msg) -> Printf.eprintf "warning: %s:%d: skipped: %s\n" path lineno msg)
            stats.Trace_io.skipped_lines;
          (path, Pmdebugger.Detector.Strict, Faultinject.Replay.events_of_steps steps))
  | None, None ->
      let spec = Workloads.Registry.find_exn workload in
      (workload, spec.W.model, Recorder.record (fun e -> spec.W.run (W.params ~annotate ~n ()) e))

(* ---------------------------------------------------------------- *)
(* infer: run the invariant-inference pass over a trace and print    *)
(* (or check) the pmdb-invariants/v1 report.                         *)
(* ---------------------------------------------------------------- *)

let infer_cmd case trace_file workload n config check json_file max_print =
  match check with
  | Some path -> (
      match Obs.Json.of_file path with
      | Error msg ->
          Printf.eprintf "%s: invalid JSON: %s\n" path msg;
          exit 1
      | Ok json -> (
          match Infer.Invariant.of_json json with
          | Ok r ->
              Printf.printf "%s: valid %s report (%d invariants over %d events)\n" path
                Infer.Invariant.schema
                (List.length r.Infer.Invariant.invariants)
                r.Infer.Invariant.events
          | Error msg ->
              Printf.eprintf "%s: invalid %s report: %s\n" path Infer.Invariant.schema msg;
              exit 1))
  | None ->
      let what, model, trace = events_of_source ~case ~trace_file ~workload ~n () in
      let config =
        match (case, config) with
        | Some id, None -> (find_bugbench_case id).Bugbench.Cases.config
        | _ -> load_config config
      in
      (* The detector pass supplies Bug.t provenance chains — inference
         folds them in as evidence on top of the trace scan. *)
      let det = Pmdebugger.Detector.create ~model ~config () in
      let report = Recorder.replay trace (Pmdebugger.Detector.sink det) in
      let inv = Infer.Analyze.infer ~report trace in
      Printf.printf "%s: %d event(s) (%d stores, %d fences), %d candidate invariant(s)\n" what
        inv.Infer.Invariant.events inv.Infer.Invariant.stores inv.Infer.Invariant.fences
        (List.length inv.Infer.Invariant.invariants);
      List.iteri
        (fun i cand ->
          if i < max_print then Format.printf "  %a@." Infer.Invariant.pp cand)
        inv.Infer.Invariant.invariants;
      if List.length inv.Infer.Invariant.invariants > max_print then
        Printf.printf "  ... (%d more)\n" (List.length inv.Infer.Invariant.invariants - max_print);
      match json_file with
      | None -> ()
      | Some path ->
          Obs.Json.to_file path (Infer.Invariant.to_json inv);
          Printf.printf "report -> %s\n" path

let explain_cmd case trace_file workload n config max_print =
  let what, model, trace = events_of_source ~case ~trace_file ~workload ~n () in
  (* A bugbench case carries its own persist-order config (the
     order-guarantee cases need it to fire); -c overrides. *)
  let config =
    match (case, config) with
    | Some id, None -> (find_bugbench_case id).Bugbench.Cases.config
    | _ -> load_config config
  in
  let det = Pmdebugger.Detector.create ~model ~config () in
  let report = Recorder.replay trace (Pmdebugger.Detector.sink det) in
  Printf.printf "%s: %d event(s), %d finding(s)\n" what (Array.length trace)
    (List.length report.Bug.bugs);
  let shown = ref 0 in
  List.iter
    (fun b ->
      if !shown < max_print then begin
        incr shown;
        Format.printf "@.%a@." Bug.pp b;
        match b.Bug.chain with
        | [] -> Format.printf "  (no causal history)@."
        | chain ->
            List.iter
              (fun c ->
                let resolved =
                  if c.Bug.c_seq >= 1 && c.Bug.c_seq <= Array.length trace then
                    Format.asprintf "%a" Event.pp trace.(c.Bug.c_seq - 1)
                  else Format.asprintf "<%s event outside this trace>" c.Bug.c_class
                in
                Format.printf "  #%-5d %-26s %s@." c.Bug.c_seq resolved
                  (if c.Bug.c_note = "" then "" else "— " ^ c.Bug.c_note))
              chain
      end)
    report.Bug.bugs;
  let total = List.length report.Bug.bugs in
  if total > max_print then Printf.printf "... and %d more finding(s)\n" (total - max_print)

let timeline_cmd case trace_file workload n annotate out max_tracks =
  (* Coarse phases (source the trace, build the timeline) overlay the
     per-line tracks as a third process. The line tracks run in virtual
     time (1 event = 1µs) while the spans are wall-clock from 0 — the
     phases read as proportions, not as aligned timestamps. *)
  Obs.Clock.set Unix.gettimeofday;
  let spans = Obs.Span.create () in
  let what, _model, trace =
    Obs.Span.record spans
      ~attrs:[ ("workload", workload) ]
      (match (case, trace_file) with Some _, _ -> "case" | None, Some _ -> "load" | None, None -> "record")
      (fun () -> events_of_source ~annotate ~case ~trace_file ~workload ~n ())
  in
  let b = Obs.Span.record spans "build" (fun () -> Harness.Timeline.of_trace ~max_tracks trace) in
  Obs.Perfetto.process_name ~pid:3 b "phases";
  Obs.Span.render ~pid:3 b (Obs.Span.finished spans);
  Obs.Json.to_file out (Obs.Perfetto.to_json b);
  Printf.printf "timeline: %d trace event(s) from %s -> %d timeline event(s) in %s\n"
    (Array.length trace) what (Obs.Perfetto.length b) out;
  Printf.printf "open in ui.perfetto.dev (or chrome://tracing)\n"

(* ---------------------------------------------------------------- *)
(* stats: run with telemetry enabled and print the metric table; or  *)
(* validate a previously written JSON report (--check, used by CI);  *)
(* or fetch a running daemon's live metrics (--daemon SOCK).         *)
(* ---------------------------------------------------------------- *)

(* A daemon snapshot is whole-daemon truth: the dispatch domain's
   registry merged with every worker domain's published registry, so
   the per-worker serve_worker_*{domain=..} series appear alongside the
   dispatch-side counters. *)
let print_snapshot ~title ~prometheus snap =
  if prometheus then print_string (Obs.Prometheus.render snap)
  else Harness.Table.print ~title ~header:Obs.Metrics.rows_header (Obs.Metrics.to_rows snap)

let daemon_stats_cmd ~prometheus socket =
  match Serve.Client.stats ~socket with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Ok snap -> print_snapshot ~title:(Printf.sprintf "daemon telemetry: %s" socket) ~prometheus snap

(* --follow: subscribe to the daemon's stats_stream and print each
   merged-snapshot frame as it lands (--frames N bounds the stream on
   the daemon side; 0 follows until the daemon goes away). *)
let daemon_follow_cmd ~socket ~frames ~prometheus =
  let seen = ref 0 in
  match
    Serve.Client.stats_follow ~socket ~frames
      ~on_frame:(fun snap ->
        incr seen;
        print_snapshot
          ~title:(Printf.sprintf "daemon telemetry: %s (frame %d)" socket !seen)
          ~prometheus snap;
        flush stdout;
        true)
      ()
  with
  | Ok n -> Printf.printf "stream closed after %d frame(s)\n" n
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let check_prometheus_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  | text -> (
      match Obs.Prometheus.validate text with
      | Ok n -> Printf.printf "%s: valid Prometheus text exposition (%d samples)\n" path n
      | Error msg ->
          Printf.eprintf "%s: invalid Prometheus exposition: %s\n" path msg;
          exit 1)

let check_report_file path =
  match Obs.Json.of_file path with
  | Error msg ->
      Printf.eprintf "%s: invalid JSON: %s\n" path msg;
      exit 1
  | Ok json when Obs.Json.member "traceEvents" json <> None -> (
      (* A Perfetto/Chrome trace-event document (pmdb timeline,
         --trace-out, the daemon's causal dumps) — structural check. *)
      match Obs.Perfetto.validate_json json with
      | Ok n -> Printf.printf "%s: valid trace-event document (%d events)\n" path n
      | Error msg ->
          Printf.eprintf "%s: invalid trace-event document: %s\n" path msg;
          exit 1)
  | Ok json -> (
      match Obs.Json.member "schema" json with
      | Some (Obs.Json.Str "pmdb-metrics/v1") -> (
          match Obs.Metrics.validate_json json with
          | Ok n -> Printf.printf "%s: valid pmdb-metrics/v1 report (%d series)\n" path n
          | Error msg ->
              Printf.eprintf "%s: invalid pmdb-metrics/v1 report: %s\n" path msg;
              exit 1)
      | Some (Obs.Json.Str "pmdb-bench/v1") -> (
          let fail msg =
            Printf.eprintf "%s: invalid pmdb-bench/v1 report: %s\n" path msg;
            exit 1
          in
          match Obs.Json.member "rows" json with
          | Some (Obs.Json.List rows) ->
              if rows = [] then fail "empty rows";
              List.iteri
                (fun i row ->
                  let str k = match Obs.Json.member k row with Some (Obs.Json.Str _) -> () | _ -> fail (Printf.sprintf "row %d: missing string %S" i k) in
                  let num k =
                    match Obs.Json.member k row with
                    | Some (Obs.Json.Float _) | Some (Obs.Json.Int _) -> ()
                    | _ -> fail (Printf.sprintf "row %d: missing number %S" i k)
                  in
                  str "bench";
                  num "n";
                  num "native_s";
                  num "dispatch_p50_s";
                  num "dispatch_p95_s";
                  num "dispatch_p99_s";
                  match Obs.Json.member "slowdowns" row with
                  | Some (Obs.Json.Obj (_ :: _)) -> ()
                  | _ -> fail (Printf.sprintf "row %d: missing object \"slowdowns\"" i))
                rows;
              (match Obs.Json.member "telemetry" json with
              | Some telemetry -> (
                  match Obs.Metrics.validate_json telemetry with
                  | Ok _ -> ()
                  | Error msg -> fail ("telemetry: " ^ msg))
              | None -> fail "missing \"telemetry\"");
              Printf.printf "%s: valid pmdb-bench/v1 report (%d rows)\n" path (List.length rows)
          | _ -> fail "missing \"rows\" list")
      | Some (Obs.Json.Str "pmdb-invariants/v1") -> (
          match Infer.Invariant.of_json json with
          | Ok r ->
              Printf.printf "%s: valid pmdb-invariants/v1 report (%d invariants)\n" path
                (List.length r.Infer.Invariant.invariants)
          | Error msg ->
              Printf.eprintf "%s: invalid pmdb-invariants/v1 report: %s\n" path msg;
              exit 1)
      | Some (Obs.Json.Str "pmdb-charz/v1") -> (
          match Obs.Json.member "events" json with
          | Some (Obs.Json.Int n) -> Printf.printf "%s: valid pmdb-charz/v1 report (%d events)\n" path n
          | _ ->
              Printf.eprintf "%s: invalid pmdb-charz/v1 report: missing integer \"events\"\n" path;
              exit 1)
      | Some (Obs.Json.Str other) ->
          Printf.eprintf "%s: unknown schema %S\n" path other;
          exit 1
      | _ ->
          Printf.eprintf "%s: missing \"schema\" field\n" path;
          exit 1)

(* --diff: a metrics file is either a pmdb-metrics/v1 snapshot or a
   pmdb-bench/v1 report (whose "telemetry" member is a snapshot). *)
let load_snapshot path =
  match Obs.Json.of_file path with
  | Error msg ->
      Printf.eprintf "%s: invalid JSON: %s\n" path msg;
      exit 1
  | Ok json -> (
      let doc =
        match Obs.Json.member "schema" json with
        | Some (Obs.Json.Str "pmdb-bench/v1") -> (
            match Obs.Json.member "telemetry" json with
            | Some t -> t
            | None ->
                Printf.eprintf "%s: pmdb-bench/v1 report without \"telemetry\"\n" path;
                exit 1)
        | _ -> json
      in
      match Obs.Metrics.snapshot_of_json doc with
      | Ok snap -> snap
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 1)

let diff_cmd files check_regressions threshold gauge_threshold =
  match files with
  | [ a; b ] ->
      let before = load_snapshot a and after = load_snapshot b in
      let d = Obs.Diff.compute ~before ~after in
      if Obs.Diff.is_empty d then Printf.printf "%s -> %s: no metric changes\n" a b
      else
        Harness.Table.print
          ~title:(Printf.sprintf "metrics diff: %s -> %s" a b)
          ~header:Obs.Diff.rows_header (Obs.Diff.to_rows d);
      if check_regressions then begin
        let gate_desc =
          Printf.sprintf "counter threshold %+.1f%%%s" (100.0 *. threshold)
            (match gauge_threshold with
            | None -> ""
            | Some g -> Printf.sprintf ", gauge threshold %+.1f%%" (100.0 *. g))
        in
        match Obs.Diff.regressions ~threshold ?gauge_threshold d with
        | [] -> Printf.printf "no regressions (%s)\n" gate_desc
        | regs ->
            Printf.printf "%d regression(s) over %s:\n" (List.length regs) gate_desc;
            List.iter (fun c -> Format.printf "  %a@." Obs.Diff.pp_change c) regs;
            exit 1
      end
  | _ -> failwith "--diff takes exactly two metrics files: pmdb stats --diff A.json B.json"

let stats_cmd workload n detector config check check_prometheus diff files check_regressions threshold
    gauge_threshold json_file daemon follow frames prometheus =
  match daemon with
  | Some socket ->
      if follow || frames > 0 then daemon_follow_cmd ~socket ~frames ~prometheus
      else daemon_stats_cmd ~prometheus socket
  | None when follow || frames > 0 -> failwith "--follow/--frames requires --daemon SOCK"
  | None ->
  if diff then diff_cmd files check_regressions threshold gauge_threshold
  else
  match check_prometheus with
  | Some path -> check_prometheus_file path
  | None ->
  match check with
  | Some path -> check_report_file path
  | None ->
      Obs.Clock.set Unix.gettimeofday;
      let metrics = Obs.Metrics.create () in
      let spans = Obs.Span.create () in
      let engine, reports, _dt = run_workload_reports ~metrics ~spans workload n detector config false in
      List.iter
        (fun report ->
          Printf.printf "%s on %s (n=%d): %d event(s), %d finding(s)\n" report.Bug.detector workload n
            report.Bug.events_processed
            (List.length report.Bug.bugs))
        reports;
      print_quarantined engine;
      let snap = Obs.Metrics.snapshot metrics in
      print_snapshot ~title:(Printf.sprintf "telemetry: %s -w %s -n %d" detector workload n) ~prometheus snap;
      match json_file with
      | None -> ()
      | Some path ->
          let json =
            match Obs.Metrics.snapshot_to_json snap with
            | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ [ ("spans", Obs.Span.to_json spans) ])
            | other -> other
          in
          Obs.Json.to_file path json;
          Printf.printf "metrics written to %s\n" path

let serve_cmd socket workers queue_capacity idle_timeout session_budget max_sessions detector config shards
    frame_size metrics_file flightrec_dir heatmap_cap trace_out stop probe =
  if stop then (
    match Serve.Client.stop ~socket with
    | Ok () -> Printf.printf "daemon at %s stopped\n" socket
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1)
  else
    match probe with
    | Some kind ->
        let kind =
          match kind with
          | "garbage" -> Serve.Client.Garbage
          | "hang" -> Serve.Client.Hang
          | other -> failwith (Printf.sprintf "unknown --probe %S (expected garbage or hang)" other)
        in
        (match Serve.Client.probe ~socket ~name:(Printf.sprintf "probe-%d" (Unix.getpid ())) kind with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        | Ok frame ->
            Printf.printf "probe answered: status %s%s\n"
              (Serve.Status.name frame.Serve.Wire.status)
              (match frame.Serve.Wire.error with None -> "" | Some e -> Printf.sprintf " (%s)" e);
            exit (Serve.Status.exit_code frame.Serve.Wire.status))
    | None ->
        let config = load_config config in
        (* Telemetry is always on for the daemon: the dispatch domain
           and every worker domain record into their own registries,
           and each stats reply merges them — `pmdb stats --daemon`
           reports whole-daemon truth, worker series included. *)
        let metrics = Obs.Metrics.create () in
        Obs.Clock.set Unix.gettimeofday;
        let cfg =
          {
            (Serve.Daemon.default_config ~socket) with
            Serve.Daemon.workers;
            queue_capacity;
            idle_timeout;
            session_budget;
            max_sessions;
            metrics_file;
            flightrec_dir;
            heatmap_cap;
            trace_out;
          }
        in
        (* Each session's sink may itself shard across domains: worker
           domains then act as routers feeding shard domains, so budget
           [workers * shards] cores. The sharded path keeps per-session
           registries disabled like the plain one — the daemon's merged
           telemetry comes from the dispatch/worker registries. *)
        let make_sink ~heatmap =
          sink_for ~metrics:Obs.Metrics.disabled ~heatmap ~shards ~frame_size detector
            Pmdebugger.Detector.Strict config
        in
        let daemon = Serve.Daemon.create ~metrics ~make_sink cfg in
        Serve.Daemon.install_signal_handlers daemon;
        Printf.printf "pmdb serve: listening on %s (workers=%d, budget=%d bytes, idle-timeout=%.1fs)\n%!" socket
          workers session_budget idle_timeout;
        (match metrics_file with
        | Some path -> Printf.printf "pmdb serve: Prometheus exposition -> %s (every %.1fs)\n%!" path cfg.Serve.Daemon.stream_interval
        | None -> ());
        (match flightrec_dir with
        | Some dir -> Printf.printf "pmdb serve: flight-recorder dumps -> %s\n%!" dir
        | None -> ());
        (match trace_out with
        | Some dir -> Printf.printf "pmdb serve: causal Perfetto traces -> %s (SIGQUIT or shutdown)\n%!" dir
        | None -> ());
        if heatmap_cap > 0 then
          Printf.printf "pmdb serve: hot-line heatmap on (cap %d lines/worker; query with `pmdb heatmap --daemon %s`)\n%!"
            heatmap_cap socket;
        Serve.Daemon.run daemon;
        Printf.printf "pmdb serve: stopped\n"

(* ---------------------------------------------------------------- *)
(* heatmap: the hot-line table, from a local run or a live daemon;   *)
(* top: the refreshing dashboard over the daemon's stats_stream.     *)
(* ---------------------------------------------------------------- *)

let line_bytes = 64

let print_heatmap ~what ~top ~json (snap : Obs.Heatmap.snapshot) =
  let snap = { snap with Obs.Heatmap.s_rows = List.filteri (fun i _ -> i < top) snap.Obs.Heatmap.s_rows } in
  if json then print_endline (Obs.Json.to_string ~indent:true (Obs.Heatmap.snapshot_to_json snap))
  else if snap.Obs.Heatmap.s_rows = [] then
    Printf.printf "no lines tracked for %s (daemon started without --heatmap-cap, or no PM traffic yet)\n" what
  else
    Harness.Table.print
      ~title:
        (Printf.sprintf "hot lines: %s (%d tracked%s)" what snap.Obs.Heatmap.s_tracked
           (if snap.Obs.Heatmap.s_dropped > 0 then
              Printf.sprintf ", %d event(s) on lines past the cap" snap.Obs.Heatmap.s_dropped
            else ""))
      ~header:[ "line"; "variable"; "stores"; "clfs"; "bugs"; "dirty seqs" ]
      (List.map
         (fun (r : Obs.Heatmap.row) ->
           [
             Printf.sprintf "0x%x" (r.Obs.Heatmap.r_line * line_bytes);
             (match r.Obs.Heatmap.r_name with Some n -> n | None -> "");
             string_of_int r.Obs.Heatmap.r_stores;
             string_of_int r.Obs.Heatmap.r_clfs;
             string_of_int r.Obs.Heatmap.r_bugs;
             string_of_int r.Obs.Heatmap.r_dirty;
           ])
         snap.Obs.Heatmap.s_rows)

let heatmap_cmd case trace_file workload n config cap top json daemon =
  match daemon with
  | Some socket -> (
      (* The daemon's merged per-worker tables, over the wire. *)
      match Serve.Client.heatmap ~socket with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      | Ok snap -> print_heatmap ~what:socket ~top ~json snap)
  | None ->
      (* Annotations on: Register_var events give the hot lines names. *)
      let what, model, trace = events_of_source ~annotate:true ~case ~trace_file ~workload ~n () in
      let config =
        match (case, config) with
        | Some id, None -> (find_bugbench_case id).Bugbench.Cases.config
        | _ -> load_config config
      in
      let heatmap = Obs.Heatmap.create ~cap () in
      let det = Pmdebugger.Detector.create ~model ~config ~heatmap () in
      ignore (Recorder.replay trace (Pmdebugger.Detector.sink det));
      print_heatmap ~what ~top ~json (Obs.Heatmap.snapshot heatmap)

let top_cmd socket once =
  (* --once asks the daemon for exactly one stats frame (CI smoke and
     scripting); otherwise follow the stream, clear + redraw per frame
     when stdout is a terminal. *)
  let frames = if once then 1 else 0 in
  let interactive = (not once) && Unix.isatty Unix.stdout in
  let prev = ref None in
  let last = ref (Unix.gettimeofday ()) in
  match
    Serve.Client.stats_follow ~socket ~frames
      ~on_frame:(fun snap ->
        let t = Unix.gettimeofday () in
        let dt = t -. !last in
        last := t;
        if interactive then print_string "\027[2J\027[H";
        print_string (Harness.Top.render ~prev:!prev ~cur:snap ~dt);
        flush stdout;
        prev := Some snap;
        true)
      ()
  with
  | Ok 0 ->
      Printf.eprintf "error: daemon closed the stream without a stats frame\n";
      exit 1
  | Ok n -> if not interactive then Printf.printf "stream closed after %d frame(s)\n" n
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let list_cmd () =
  List.iter
    (fun (spec : W.spec) ->
      let model =
        match spec.W.model with
        | Pmdebugger.Detector.Strict -> "strict"
        | Pmdebugger.Detector.Epoch -> "epoch"
        | Pmdebugger.Detector.Strand -> "strand"
      in
      Printf.printf "%-16s %-7s %s\n" spec.W.name model spec.W.description)
    Workloads.Registry.all

let metrics_arg =
  let doc = "Write a pmdb-metrics/v1 JSON telemetry snapshot (metric series + spans) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let shards_arg =
  let doc =
    "Shard pmdebugger's detection across $(docv) parallel domain workers (events partitioned by cache line; the \
     merged report is identical to a single-shard run). 0 = the plain in-process detector. Requires -d pmdebugger."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

let frame_size_arg =
  let doc =
    "Events per published frame on the sharded hand-off: the router batches each shard's events into flat byte \
     frames and publishes a whole frame at a time, amortizing the per-event synchronization that capped sharded \
     throughput. 0 = the per-event transport (one boxed message per event; the measured baseline). Only meaningful \
     with --shards >= 1."
  in
  Arg.(value & opt int Shard_router.default_frame_size & info [ "frame-size" ] ~docv:"EVENTS" ~doc)

let backend_arg =
  let doc =
    "Bookkeeping backend for pmdebugger: 'hybrid' (the paper's array+tree structure) or 'flat' (linear-scan \
     baseline used for honest backend comparisons)."
  in
  Arg.(value & opt string "hybrid" & info [ "backend" ] ~docv:"STORE" ~doc)

let trace_out_arg =
  let doc =
    "Write a causal Perfetto trace of the run to $(docv): the router's and every shard worker's flight-recorder \
     rings merged onto one time base (frame publish->pop as flow arrows) plus the run's coarse phase spans. Open \
     in ui.perfetto.dev; validate with `pmdb stats --check`."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let run_term =
  Term.(
    const run_cmd $ workload_arg $ n_arg $ detector_arg $ config_arg $ annotate_arg $ max_bugs_arg $ shards_arg
    $ frame_size_arg $ backend_arg $ metrics_arg $ trace_out_arg)

let out_arg =
  let doc = "Output trace file." in
  Arg.(value & opt string "trace.pmt" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_file_arg =
  let doc = "Trace file to replay (as produced by `pmdb record`)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let record_term = Term.(const record_cmd $ workload_arg $ n_arg $ annotate_arg $ out_arg)

let lenient_arg =
  let doc = "Skip malformed trace lines (with a warning each) and synthesize a program_end for truncated traces." in
  Arg.(value & flag & info [ "lenient" ] ~doc)

let daemon_arg =
  let doc = "Stream the trace to the `pmdb serve` daemon at $(docv) instead of detecting in-process." in
  Arg.(value & opt (some string) None & info [ "daemon" ] ~docv:"SOCK" ~doc)

let replay_term =
  Term.(
    const replay_cmd $ trace_file_arg $ detector_arg $ config_arg $ max_bugs_arg $ lenient_arg $ daemon_arg
    $ shards_arg $ frame_size_arg $ backend_arg $ metrics_arg $ trace_out_arg)

let socket_arg =
  let doc = "Unix-domain socket path the daemon listens on." in
  Arg.(value & opt string "pmdb.sock" & info [ "s"; "socket" ] ~docv:"SOCK" ~doc)

let workers_arg =
  let doc = "Worker domains detection is multiplexed over." in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let queue_capacity_arg =
  let doc = "Per-worker event-queue capacity (the first backpressure rung)." in
  Arg.(value & opt int 1024 & info [ "queue-capacity" ] ~docv:"N" ~doc)

let idle_timeout_arg =
  let doc = "Seconds of client silence before a session is reaped with a partial report (0 disables)." in
  Arg.(value & opt float 30.0 & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)

let session_budget_arg =
  let doc = "Bytes a session may hold in the daemon before it is evicted with a partial report." in
  Arg.(value & opt int (8 * 1024 * 1024) & info [ "session-budget" ] ~docv:"BYTES" ~doc)

let max_sessions_arg =
  let doc = "Concurrent connection cap." in
  Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N" ~doc)

let metrics_file_arg =
  let doc =
    "Write a Prometheus text-format exposition of the daemon's merged telemetry to $(docv) atomically every stream \
     interval (scrape it with a node_exporter textfile collector, or validate with `pmdb stats --check-prometheus`)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-file" ] ~docv:"FILE" ~doc)

let flightrec_dir_arg =
  let doc =
    "Directory for flight-recorder black-box dumps: on a session quarantine, an eviction or SIGQUIT the daemon \
     writes the last events of every ring there as JSON and a Perfetto trace."
  in
  Arg.(value & opt (some string) None & info [ "flightrec-dir" ] ~docv:"DIR" ~doc)

let heatmap_cap_arg =
  let doc =
    "Track the $(docv) hottest cache lines per worker (traffic, dirty virtual time, bug density); query the merged \
     table with `pmdb heatmap --daemon`. 0 (the default) disables tracking — the per-event cost is one branch."
  in
  Arg.(value & opt int 0 & info [ "heatmap-cap" ] ~docv:"LINES" ~doc)

let serve_trace_out_arg =
  let doc =
    "Directory for daemon-wide causal Perfetto traces: on SIGQUIT and at shutdown the dispatch domain's and every \
     worker's flight-recorder rings are merged onto one time base (frame publish->pop flow arrows included) and \
     written there. Requires flight recording, which is always on in the daemon."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"DIR" ~doc)

let serve_stop_arg =
  let doc = "Ask the daemon at --socket to shut down gracefully, then exit." in
  Arg.(value & flag & info [ "stop" ] ~doc)

let probe_arg =
  let doc =
    "Act as a deliberately misbehaving client against the daemon at --socket: 'garbage' streams unparseable lines, \
     'hang' opens a session and goes silent (CI uses both to check fault isolation)."
  in
  Arg.(value & opt (some string) None & info [ "probe" ] ~docv:"KIND" ~doc)

let serve_term =
  Term.(
    const serve_cmd $ socket_arg $ workers_arg $ queue_capacity_arg $ idle_timeout_arg $ session_budget_arg
    $ max_sessions_arg $ detector_arg $ config_arg $ shards_arg $ frame_size_arg $ metrics_file_arg
    $ flightrec_dir_arg $ heatmap_cap_arg $ serve_trace_out_arg $ serve_stop_arg $ probe_arg)

let case_arg =
  let doc = "Explore a bugbench case by id instead of a workload." in
  Arg.(value & opt (some string) None & info [ "case" ] ~docv:"ID" ~doc)

let expect_arg =
  let doc =
    "Recovery predicate for the workload: comma-separated clauses, e.g. 'i64\\@0=1', 'nonzero\\@64', 'le\\@8<=16', \
     'ifset\\@0=>64'."
  in
  Arg.(value & opt (some string) None & info [ "expect" ] ~docv:"PRED" ~doc)

let fences_only_arg =
  let doc = "Check crash images only at fences (the legacy sampling) instead of every store/CLF/fence." in
  Arg.(value & flag & info [ "fences-only" ] ~doc)

let max_images_arg =
  let doc = "Crash images sampled per boundary." in
  Arg.(value & opt int 64 & info [ "max-images" ] ~docv:"K" ~doc)

let bisect_arg =
  let doc = "Report only the minimal failing prefix, found by coarse fence scan plus fine window scan." in
  Arg.(value & flag & info [ "bisect" ] ~doc)

let explore_trace_arg =
  let doc =
    "Explore a recorded trace file (as produced by `pmdb record`) instead of a workload; requires --expect. Stores \
     replay with a synthetic fill, since the on-disk format carries no payloads."
  in
  Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc)

let strategy_arg =
  let doc =
    "Crash-point exploration strategy: 'exhaustive' (every boundary in trace order), 'guided' (boundaries ranked by \
     inferred-invariant risk, highest first — pair with --budget) or 'sampled' (seeded reservoir over the \
     boundaries, sized by --budget / --max-images)."
  in
  Arg.(value & opt string "exhaustive" & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let budget_arg =
  let doc =
    "Total crash-image budget for the whole exploration: stop once $(docv) images have been derived and tested \
     (0 = unbounded). The last boundary's sample is truncated to the remainder, so the run never exceeds the budget."
  in
  Arg.(value & opt int 0 & info [ "budget" ] ~docv:"N" ~doc)

let invariants_out_arg =
  let doc =
    "Write the pmdb-invariants/v1 report the run inferred (or would infer) to $(docv); validate with `pmdb infer \
     --check` or `pmdb stats --check`."
  in
  Arg.(value & opt (some string) None & info [ "invariants-out" ] ~docv:"FILE" ~doc)

let explore_seed_arg =
  let doc = "Seed for the sampled strategy's reservoir (deterministic in it)." in
  Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"SEED" ~doc)

let crash_explore_term =
  Term.(
    const crash_explore_cmd $ case_arg $ explore_trace_arg $ workload_arg $ n_arg $ expect_arg $ fences_only_arg
    $ max_images_arg $ bisect_arg $ strategy_arg $ budget_arg $ invariants_out_arg $ explore_seed_arg
    $ metrics_arg)

let fault_arg =
  let doc = "Fault class: drop-clf, drop-fence, torn-store, duplicate-flush or evict-line." in
  Arg.(value & opt string "drop-clf" & info [ "fault" ] ~docv:"FAULT" ~doc)

let target_arg =
  let doc = "Which candidate site(s) to mutate: nth:K, every:K, last, all or random:P." in
  Arg.(value & opt string "nth:0" & info [ "target" ] ~docv:"TARGET" ~doc)

let seed_arg =
  let doc = "Seed for random targeting (the plan is deterministic in it)." in
  Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"SEED" ~doc)

let matrix_arg =
  let doc = "Run the detector sensitivity matrix (every fault class on every clean workload) and exit." in
  Arg.(value & flag & info [ "matrix" ] ~doc)

let inject_term =
  Term.(
    const inject_cmd $ matrix_arg $ workload_arg $ n_arg $ fault_arg $ target_arg $ seed_arg $ detector_arg
    $ config_arg $ max_bugs_arg $ metrics_arg)

let charz_json_arg =
  let doc = "Print the characterization as a pmdb-charz/v1 JSON report instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let characterize_term = Term.(const characterize_cmd $ workload_arg $ n_arg $ charz_json_arg)

let bugs_term = Term.(const bugs_cmd $ metrics_arg)

let check_arg =
  let doc = "Validate a JSON report written by --metrics, characterize --json or the bench (exit 1 if invalid)." in
  Arg.(value & opt (some file) None & info [ "check" ] ~docv:"FILE" ~doc)

let stats_json_arg =
  let doc = "Also write the telemetry snapshot to $(docv) as pmdb-metrics/v1 JSON." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let diff_flag_arg =
  let doc = "Diff two metrics files (pmdb-metrics/v1, or pmdb-bench/v1 via its telemetry section) given as positional arguments." in
  Arg.(value & flag & info [ "diff" ] ~doc)

let diff_files_arg =
  let doc = "Metrics files for --diff (before, after)." in
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)

let check_regressions_arg =
  let doc = "Exit 1 when a counter grew by more than --threshold between the two --diff files (the CI gate)." in
  Arg.(value & flag & info [ "check-regressions" ] ~doc)

let threshold_arg =
  let doc = "Relative counter-growth tolerance for --check-regressions (0.05 = 5%)." in
  Arg.(value & opt float 0.0 & info [ "threshold" ] ~docv:"REL" ~doc)

let gauge_threshold_arg =
  let doc =
    "Also gate gauges in --check-regressions: fail when a gauge grew by more than this relative threshold \
     (gauges never gate without this flag — most are timing-dependent; use it for deterministic capacity \
     peaks like the shard queue depths)."
  in
  Arg.(value & opt (some float) None & info [ "gauge-threshold" ] ~docv:"REL" ~doc)

let check_prometheus_arg =
  let doc = "Validate a Prometheus text exposition written by `pmdb serve --metrics-file` (exit 1 if invalid)." in
  Arg.(value & opt (some file) None & info [ "check-prometheus" ] ~docv:"FILE" ~doc)

let follow_arg =
  let doc = "With --daemon: subscribe to the stats stream and print each periodic merged snapshot as it arrives." in
  Arg.(value & flag & info [ "follow" ] ~doc)

let frames_arg =
  let doc = "With --daemon: stop following after $(docv) frames (0 = until the daemon goes away); implies --follow." in
  Arg.(value & opt int 0 & info [ "frames" ] ~docv:"N" ~doc)

let prometheus_arg =
  let doc = "Print snapshots in Prometheus text exposition format instead of the metric table." in
  Arg.(value & flag & info [ "prometheus" ] ~doc)

let stats_term =
  Term.(
    const stats_cmd $ workload_arg $ n_arg $ detector_arg $ config_arg $ check_arg $ check_prometheus_arg
    $ diff_flag_arg $ diff_files_arg $ check_regressions_arg $ threshold_arg $ gauge_threshold_arg $ stats_json_arg
    $ daemon_arg $ follow_arg $ frames_arg $ prometheus_arg)

let src_trace_arg =
  let doc = "Use a recorded trace file (as produced by `pmdb record`) instead of a workload." in
  Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc)

let explain_term =
  Term.(
    const explain_cmd $ case_arg $ src_trace_arg $ workload_arg $ n_arg $ config_arg $ max_bugs_arg)

let infer_check_arg =
  let doc = "Validate a pmdb-invariants/v1 JSON report and exit (exit 1 if invalid)." in
  Arg.(value & opt (some file) None & info [ "check" ] ~docv:"FILE" ~doc)

let infer_json_arg =
  let doc = "Also write the invariant report to $(docv) as pmdb-invariants/v1 JSON." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let infer_max_print_arg =
  let doc = "Print at most $(docv) invariants." in
  Arg.(value & opt int 20 & info [ "max-print" ] ~docv:"K" ~doc)

let infer_term =
  Term.(
    const infer_cmd $ case_arg $ src_trace_arg $ workload_arg $ n_arg $ config_arg $ infer_check_arg
    $ infer_json_arg $ infer_max_print_arg)

let timeline_out_arg =
  let doc = "Output Perfetto/Chrome trace-event JSON file." in
  Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let max_tracks_arg =
  let doc = "Cap on per-cache-line persistency tracks." in
  Arg.(value & opt int 64 & info [ "max-tracks" ] ~docv:"K" ~doc)

let timeline_term =
  Term.(
    const timeline_cmd $ case_arg $ src_trace_arg $ workload_arg $ n_arg $ annotate_arg
    $ timeline_out_arg $ max_tracks_arg)

let heatmap_local_cap_arg =
  let doc = "Hottest-line table capacity for a local (non --daemon) run." in
  Arg.(value & opt int 1024 & info [ "cap" ] ~docv:"LINES" ~doc)

let heatmap_top_arg =
  let doc = "Print only the $(docv) hottest lines." in
  Arg.(value & opt int 20 & info [ "top" ] ~docv:"K" ~doc)

let heatmap_json_arg =
  let doc = "Print the table as a pmdb-heatmap/v1 JSON document instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let heatmap_term =
  Term.(
    const heatmap_cmd $ case_arg $ src_trace_arg $ workload_arg $ n_arg $ config_arg $ heatmap_local_cap_arg
    $ heatmap_top_arg $ heatmap_json_arg $ daemon_arg)

let once_arg =
  let doc = "Print one dashboard frame and exit (CI smoke and scripting)." in
  Arg.(value & flag & info [ "once" ] ~doc)

let top_term = Term.(const top_cmd $ socket_arg $ once_arg)

let list_term = Term.(const list_cmd $ const ())

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Debug a workload with a detector") run_term;
    Cmd.v (Cmd.info "characterize" ~doc:"Print the Sec. 3 pattern metrics for a workload trace") characterize_term;
    Cmd.v (Cmd.info "bugs" ~doc:"Run the 78-case bug dataset against all four detectors") bugs_term;
    Cmd.v (Cmd.info "record" ~doc:"Record a workload's event trace to a file") record_term;
    Cmd.v (Cmd.info "replay" ~doc:"Replay a recorded trace into a detector") replay_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Run the multi-session detection daemon on a Unix socket (or --stop / --probe a running one)")
      serve_term;
    Cmd.v
      (Cmd.info "crash-explore" ~doc:"Test recovery against every derivable crash image of a trace")
      crash_explore_term;
    Cmd.v (Cmd.info "inject" ~doc:"Mutate a workload trace with a fault and re-run the detector") inject_term;
    Cmd.v
      (Cmd.info "infer"
         ~doc:"Infer ordering/atomicity/durability invariants from a trace (prints or checks pmdb-invariants/v1)")
      infer_term;
    Cmd.v
      (Cmd.info "explain" ~doc:"Pretty-print each finding's causal chain, resolved against its trace")
      explain_term;
    Cmd.v
      (Cmd.info "timeline" ~doc:"Export a trace as Perfetto/Chrome trace-event JSON (ui.perfetto.dev)")
      timeline_term;
    Cmd.v (Cmd.info "stats" ~doc:"Run with telemetry enabled and print the metric table, --check a JSON report, or --diff two of them") stats_term;
    Cmd.v
      (Cmd.info "heatmap"
         ~doc:"Print the hottest cache lines (traffic, dirty time, bug density) of a run or a live daemon")
      heatmap_term;
    Cmd.v (Cmd.info "top" ~doc:"Live dashboard over a running daemon's stats stream (throughput, latency, sessions)") top_term;
    Cmd.v (Cmd.info "list" ~doc:"List available workloads") list_term;
  ]

let () =
  let doc = "PMDebugger reproduction: crash-consistency bug detection for PM programs" in
  exit (Cmd.eval (Cmd.group (Cmd.info "pmdb" ~version:"1.0" ~doc) cmds))
