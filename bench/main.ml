(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe             -- run everything
     dune exec bench/main.exe -- fig8     -- run one experiment
     dune exec bench/main.exe -- --quick  -- CI smoke: report only, small sizes

   Experiments: fig2a fig2b fig2c fig8 table5 table_sota table6 fig10
   fig11 newbugs ablation faultinject bechamel report streaming sharding
   serve

   The report experiment also writes BENCH_pr2.json, the streaming
   experiment BENCH_pr3.json, the sharding experiment BENCH_pr9.json
   (frames-vs-per-event transport curve) and the serve soak
   BENCH_pr6.json (all pmdb-bench/v1: per-bench
   slowdowns + dispatch-latency quantiles + a telemetry snapshot);
   validate them with `pmdb stats --check BENCH_prN.json`. *)

open Pmtrace
module W = Workloads.Workload
module T = Harness.Table

let params ?(annotate = false) n = W.params ~annotate ~n ()

let run_spec (spec : W.spec) ?annotate n engine = spec.W.run (params ?annotate n) engine

let record_spec (spec : W.spec) ?annotate n = Recorder.record (run_spec spec ?annotate n)

let mk_pmdebugger model () = Pmdebugger.Detector.sink (Pmdebugger.Detector.create ~model ())

let mk_pmemcheck () = Baselines.Pmemcheck.sink (Baselines.Pmemcheck.create ())

let mk_pmtest () = Baselines.Pmtest.sink (Baselines.Pmtest.create ())

let mk_xfdetector () = Baselines.Xfdetector.sink (Baselines.Xfdetector.create ())

(* ------------------------------------------------------------------ *)
(* Figure 2: characterization.                                         *)
(* ------------------------------------------------------------------ *)

let is_ycsb name = String.length name > 5 && String.sub name 1 5 = "_YCSB"

let charz_traces =
  lazy
    (List.map
       (fun (spec : W.spec) ->
         let n = if is_ycsb spec.W.name then 2000 else 1000 in
         (spec.W.name, record_spec spec n))
       Workloads.Registry.characterization)

let fig2a () =
  let rows =
    List.map
      (fun (name, trace) ->
        let h = Charz.distance_histogram trace in
        let pct n = T.fmt_pct (if h.Charz.total = 0 then 0.0 else float_of_int n /. float_of_int h.Charz.total) in
        (name :: (Array.to_list h.Charz.counts |> List.map pct))
        @ [ pct h.Charz.beyond; T.fmt_pct (Charz.fraction_at_most h 3) ])
      (Lazy.force charz_traces)
  in
  T.print ~title:"Figure 2a: distribution of store-to-guaranteeing-fence distance"
    ~header:[ "workload"; "d=1"; "d=2"; "d=3"; "d=4"; "d=5"; "d>5"; "d<=3 (paper: 84.5% avg)" ]
    rows

let fig2b () =
  let rows =
    List.map
      (fun (name, trace) ->
        let c = Charz.writeback_classes trace in
        [
          name;
          string_of_int c.Charz.collective;
          string_of_int c.Charz.dispersed;
          T.fmt_pct (Charz.collective_fraction c);
        ])
      (Lazy.force charz_traces)
  in
  T.print ~title:"Figure 2b: collective vs dispersed writeback per CLF interval (paper: >71% collective)"
    ~header:[ "workload"; "collective"; "dispersed"; "% collective" ]
    rows

let fig2c () =
  let rows =
    List.map
      (fun (name, trace) ->
        let m = Charz.instruction_mix trace in
        [
          name;
          string_of_int m.Charz.stores;
          string_of_int m.Charz.writebacks;
          string_of_int m.Charz.fences;
          T.fmt_pct (Charz.store_fraction m);
        ])
      (Lazy.force charz_traces)
  in
  T.print ~title:"Figure 2c: instruction mix (paper: store >= 40.2% everywhere, ~70% typical)"
    ~header:[ "workload"; "stores"; "writebacks"; "fences"; "% store" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 8 + Table 5: slowdown vs Pmemcheck.                          *)
(* ------------------------------------------------------------------ *)

type fig8_row = {
  bench : string;
  size : int;
  native : float;
  nulgrind : float;
  pmdebugger : float;
  pmemcheck : float;
}

let measure_fig8 (spec : W.spec) n =
  let repeats = if n >= 100_000 then 1 else 3 in
  let m, _trace =
    Harness.Timing.measure ~repeats ~run:(run_spec spec n)
      ~detectors:[ ("pmdebugger", mk_pmdebugger spec.W.model); ("pmemcheck", mk_pmemcheck) ]
      ()
  in
  {
    bench = spec.W.name;
    size = n;
    native = m.Harness.Timing.native_s;
    nulgrind = m.Harness.Timing.nulgrind_s;
    pmdebugger = List.assoc "pmdebugger" m.Harness.Timing.detector_s;
    pmemcheck = List.assoc "pmemcheck" m.Harness.Timing.detector_s;
  }

let fig8_data =
  lazy
    (let micro_sizes = [ 1_000; 10_000; 100_000 ] in
     let micro = List.concat_map (fun spec -> List.map (measure_fig8 spec) micro_sizes) Workloads.Registry.micro in
     let memcached = List.map (measure_fig8 Workloads.Memcached.spec) [ 10_000; 40_000; 70_000; 100_000 ] in
     let redis = List.map (measure_fig8 Workloads.Redis.spec) [ 10_000; 30_000; 100_000 ] in
     micro @ memcached @ redis)

let fig8 () =
  let rows =
    List.map
      (fun r ->
        let sd t = T.fmt_x (t /. r.native) in
        [ r.bench; string_of_int r.size; sd r.nulgrind; sd r.pmdebugger; sd r.pmemcheck ])
      (Lazy.force fig8_data)
  in
  T.print
    ~title:"Figure 8: slowdown over the uninstrumented run (shape: Nulgrind < PMDebugger < Pmemcheck at every size)"
    ~header:[ "bench"; "n"; "Nulgrind"; "PMDebugger"; "Pmemcheck" ]
    rows

let table5 () =
  let biggest =
    List.fold_left
      (fun acc r ->
        match List.assoc_opt r.bench acc with
        | Some prev when prev.size >= r.size -> acc
        | _ -> (r.bench, r) :: List.remove_assoc r.bench acc)
      [] (Lazy.force fig8_data)
  in
  let rows =
    List.rev_map
      (fun (_, r) ->
        let with_instr = r.pmemcheck /. r.pmdebugger in
        let wo_instr =
          let instr = r.nulgrind in
          if r.pmdebugger > instr then (r.pmemcheck -. instr) /. (r.pmdebugger -. instr) else nan
        in
        [ r.bench; T.fmt_x with_instr; T.fmt_x wo_instr ])
      biggest
  in
  T.print
    ~title:"Table 5: PMDebugger speedup over Pmemcheck (paper: 2.2x avg w/ instr., 3.5x w/o; memcached largest)"
    ~header:[ "benchmark"; "with instr."; "w/o instr." ]
    rows

(* ------------------------------------------------------------------ *)
(* Sec 7.2: comparison with PMTest and XFDetector.                     *)
(* ------------------------------------------------------------------ *)

let table_sota () =
  let n = 10_000 in
  let specs =
    List.filter (fun (s : W.spec) -> s.W.name <> "r_tree") Workloads.Registry.micro
    @ [ Workloads.Memcached.spec; Workloads.Redis.spec ]
  in
  let rows, sums =
    List.fold_left
      (fun (rows, (count, sp, st, sx, sc)) (spec : W.spec) ->
        let m, _ =
          Harness.Timing.measure ~repeats:1
            ~run:(run_spec spec ~annotate:true n)
            ~detectors:
              [
                ("pmdebugger", mk_pmdebugger spec.W.model);
                ("pmtest", mk_pmtest);
                ("xfdetector", mk_xfdetector);
                ("pmemcheck", mk_pmemcheck);
              ]
            ()
        in
        let native = m.Harness.Timing.native_s in
        let get name = List.assoc name m.Harness.Timing.detector_s /. native in
        let pd = get "pmdebugger" and pt = get "pmtest" and xf = get "xfdetector" and pc = get "pmemcheck" in
        ( rows @ [ [ spec.W.name; T.fmt_x pt; T.fmt_x pd; T.fmt_x pc; T.fmt_x xf ] ],
          (count + 1, sp +. pd, st +. pt, sx +. xf, sc +. pc) ))
      ([], (0, 0.0, 0.0, 0.0, 0.0))
      specs
  in
  let count, s_pd, s_pt, s_xf, s_pc = sums in
  let avg x = x /. float_of_int count in
  T.print
    ~title:
      "Sec 7.2: slowdown vs state of the art (paper shape: PMTest < PMDebugger (within 2x) < Pmemcheck << XFDetector)"
    ~header:[ "bench"; "PMTest"; "PMDebugger"; "Pmemcheck"; "XFDetector" ]
    (rows @ [ [ "AVERAGE"; T.fmt_x (avg s_pt); T.fmt_x (avg s_pd); T.fmt_x (avg s_pc); T.fmt_x (avg s_xf) ] ]);
  Printf.printf "  XFDetector/PMDebugger speedup: %s (paper: 49.3x)\n" (T.fmt_x (s_xf /. s_pd));
  Printf.printf "  Pmemcheck/PMDebugger speedup:  %s (paper: 3.4x)\n" (T.fmt_x (s_pc /. s_pd));
  Printf.printf "  PMDebugger/PMTest ratio:       %s (paper: < 2x)\n" (T.fmt_x (s_pd /. s_pt));
  flush stdout

(* ------------------------------------------------------------------ *)
(* Table 1: qualitative tool comparison, derived from measurements.    *)
(* ------------------------------------------------------------------ *)

let table1 () =
  (* Overhead class: slowdown on a 10K-op b_tree trace relative to
     PMDebugger's. Coverage: kinds found on the 78-case dataset (for the
     tools Table 6 evaluates) or on a PMDK bug sampler (for the two
     domain-restricted tools). *)
  let trace = record_spec Workloads.Btree.spec 10_000 in
  let time mk = Harness.Timing.median_of ~repeats:3 (fun () -> ignore (Recorder.replay trace (mk ()))) in
  let t_pd = time (mk_pmdebugger Pmdebugger.Detector.Epoch) in
  let cls t = if t < 2.0 *. t_pd then "Small" else "High" in
  let rows =
    [
      [ "PMTest"; cls (time mk_pmtest); "Low (5 kinds)"; "Any"; "High (asserts)"; "N" ];
      [ "Pmemcheck"; cls (time mk_pmemcheck); "Medium (4 kinds)"; "PMDK"; "Low"; "N" ];
      [
        "Persist. Ins.";
        cls (time (fun () -> Baselines.Persistence_inspector.sink (Baselines.Persistence_inspector.create ())));
        "Medium";
        "PMDK";
        "Low";
        "N";
      ];
      [ "Yat"; "High"; "Medium (fsck)"; "PMFS"; "Low"; "N" ];
      [ "XFDetector"; cls (time mk_xfdetector); "Medium (6 kinds)"; "Any"; "Low"; "N" ];
      [ "PMDebugger"; cls t_pd; "High (10 kinds)"; "Any"; "Low"; "Y" ];
    ]
  in
  T.print
    ~title:"Table 1: tool landscape (overhead measured on a 10K-op b_tree trace; coverage from Table 6 / design)"
    ~header:[ "tool"; "perf. overhead"; "bug coverage"; "target domain"; "prog. effort"; "relaxed models?" ]
    rows;
  (* Yat on its own domain, to show it is implemented and working. *)
  let engine = Engine.create () in
  let yat = Minipmfs.Yat.create ~pm:(Engine.pm engine) () in
  Engine.attach engine (Minipmfs.Yat.sink yat);
  Workloads.Pmfs_wl.spec.W.run (W.params ~n:400 ()) engine;
  let r = (Minipmfs.Yat.sink yat).Sink.finish () in
  Printf.printf "  Yat on the pmfs workload: %d crash state(s) checked, %d inconsistent\n"
    (Minipmfs.Yat.states_checked yat) (List.length r.Bug.bugs);
  flush stdout

(* ------------------------------------------------------------------ *)
(* Table 6 + Sec 7.3: bug-detection capability.                        *)
(* ------------------------------------------------------------------ *)

let table6 () =
  let results = Bugbench.Eval.evaluate_all () in
  let header = "kind (cases)" :: List.map (fun r -> Bugbench.Eval.tool_name r.Bugbench.Eval.tool) results in
  let rows =
    List.map
      (fun kind ->
        let cases = Bugbench.Cases.count_by_kind kind in
        Printf.sprintf "%s (%d)" (Bug.kind_name kind) cases
        :: List.map
             (fun r ->
               let _, d, t = List.find (fun (k, _, _) -> k = kind) r.Bugbench.Eval.per_kind in
               Printf.sprintf "%d/%d" d t)
             results)
      Bug.all_kinds
  in
  let totals =
    "TOTAL (78)"
    :: List.map (fun r -> Printf.sprintf "%d/%d" r.Bugbench.Eval.detected_total r.Bugbench.Eval.case_total) results
  in
  let fn_row = "false-negative rate" :: List.map (fun r -> T.fmt_pct r.Bugbench.Eval.false_negative_rate) results in
  let fp_row =
    "false positives" :: List.map (fun r -> string_of_int (List.length r.Bugbench.Eval.false_positives)) results
  in
  let kinds_row = "bug kinds covered" :: List.map (fun r -> string_of_int r.Bugbench.Eval.kinds_covered) results in
  T.print
    ~title:
      "Table 6 + Sec 7.3 (paper: PMDebugger 78 bugs/10 kinds/0% FN; Pmemcheck 55/4/29.5%; PMTest 61/5/21.8%; \
       XFDetector 65/6/16.7%; no false positives)"
    ~header
    (rows @ [ totals; fn_row; fp_row; kinds_row ])

(* ------------------------------------------------------------------ *)
(* Figure 10: memcached thread scalability.                            *)
(* ------------------------------------------------------------------ *)

(* Each simulated thread runs against its own pool; shifting addresses
   gives threads the disjoint heaps they would have had, and round-robin
   interleaving models Valgrind's serialized scheduling. *)
let shift_event base = function
  | Event.Store s -> Event.Store { s with addr = s.addr + base }
  | Event.Clf c -> Event.Clf { c with addr = c.addr + base }
  | Event.Register_pmem r -> Event.Register_pmem { r with base = r.base + base }
  | Event.Register_var v -> Event.Register_var { v with addr = v.addr + base }
  | Event.Tx_log l -> Event.Tx_log { l with obj_addr = l.obj_addr + base }
  | ev -> ev

let retag_tid tid = function
  | Event.Store s -> Event.Store { s with tid }
  | Event.Clf c -> Event.Clf { c with tid }
  | Event.Fence _ -> Event.Fence { tid }
  | ev -> ev

let fig10 () =
  let ops_per_thread = 20_000 in
  let rows =
    List.map
      (fun threads ->
        let traces =
          List.init threads (fun tid ->
              let trace =
                Recorder.record (fun e ->
                    Workloads.Memcached.spec.W.run (W.params ~seed:(41 + tid) ~n:ops_per_thread ()) e)
              in
              Array.map (fun ev -> retag_tid tid (shift_event (tid * (1 lsl 26)) ev)) trace)
        in
        let merged = Recorder.interleave_round_robin traces in
        let native =
          Harness.Timing.median_of ~repeats:1 (fun () ->
              List.iter
                (fun tid ->
                  let e = Engine.create () in
                  Engine.set_instrumentation e false;
                  Workloads.Memcached.spec.W.run (W.params ~seed:(41 + tid) ~n:ops_per_thread ()) e)
                (List.init threads Fun.id))
        in
        let replay_time mk =
          Harness.Timing.median_of ~repeats:1 (fun () -> ignore (Recorder.replay merged (mk ())))
        in
        let t_pd = native +. replay_time (mk_pmdebugger Pmdebugger.Detector.Strict) in
        let t_pc = native +. replay_time mk_pmemcheck in
        [ string_of_int threads; T.fmt_x (t_pd /. native); T.fmt_x (t_pc /. native) ])
      [ 1; 2; 4; 6 ]
  in
  T.print
    ~title:
      "Figure 10: memcached slowdown vs thread count (paper shape: Pmemcheck grows ~linearly, PMDebugger much \
       slower growth)"
    ~header:[ "threads"; "PMDebugger"; "Pmemcheck" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 11: average AVL tree size per fence interval.                *)
(* ------------------------------------------------------------------ *)

let fig11_paper =
  [
    ("b_tree", 21.8, 39.8);
    ("c_tree", 2.3, 7.1);
    ("r_tree", 2.8, 8.3);
    ("rb_tree", 23.4, 35.6);
    ("hashmap_tx", 528.0, 619.0);
    ("hashmap_atomic", 0.4, 3.5);
    ("memcached", 0.9, 11.9);
    ("redis", 11.3, 17.2);
  ]

let fig11 () =
  let n = 10_000 in
  let rows =
    List.map
      (fun (name, paper_pd, paper_pc) ->
        let spec = Workloads.Registry.find_exn name in
        let trace = record_spec spec n in
        let d = Pmdebugger.Detector.create ~model:spec.W.model () in
        ignore (Recorder.replay trace (Pmdebugger.Detector.sink d));
        let pc = Baselines.Pmemcheck.create () in
        ignore (Recorder.replay trace (Baselines.Pmemcheck.sink pc));
        [
          name;
          T.fmt_f (Pmdebugger.Detector.avg_tree_nodes_per_fence d);
          T.fmt_f (Baselines.Pmemcheck.avg_tree_nodes_per_fence pc);
          Printf.sprintf "%.1f" paper_pd;
          Printf.sprintf "%.1f" paper_pc;
          string_of_int (Pmdebugger.Detector.reorganizations d);
          string_of_int (Baselines.Pmemcheck.reorganizations pc);
        ])
      fig11_paper
  in
  T.print
    ~title:
      "Figure 11: avg AVL tree nodes per fence interval (shape: PMDebugger < Pmemcheck everywhere; hashmap_tx \
       dominates both)"
    ~header:[ "bench"; "PMDebugger"; "Pmemcheck"; "paper-PMD"; "paper-PMC"; "reorgs-PMD"; "reorgs-PMC" ]
    rows

(* ------------------------------------------------------------------ *)
(* Sec 7.4: new bugs.                                                  *)
(* ------------------------------------------------------------------ *)

let newbugs () =
  (* Bug 1 family: the 19 memcached sites, including ITEM_set_cas. *)
  let engine = Engine.create () in
  let d = Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Strict () in
  Engine.attach engine (Pmdebugger.Detector.sink d);
  let pool = Minipmdk.Pool.create engine ~size:(64 lsl 20) in
  let mc = Workloads.Memcached.create pool ~buckets:32 ~max_items:96 in
  let rng = Workloads.Prng.create 11 in
  for op = 1 to 6000 do
    let k = Printf.sprintf "key-%03d" (Workloads.Prng.below rng 400) in
    let dice = Workloads.Prng.below rng 100 in
    if dice < 5 then Workloads.Memcached.set mc ~key:k ~value:(Printf.sprintf "v%d" op)
    else if dice < 93 then ignore (Workloads.Memcached.get mc ~key:k)
    else if dice < 96 then ignore (Workloads.Memcached.delete mc ~key:k)
    else if dice < 98 then ignore (Workloads.Memcached.touch mc ~key:k ~exptime:op)
    else ignore (Workloads.Memcached.append mc ~key:k ~value:"+x")
  done;
  Workloads.Memcached.flush_all mc;
  Engine.program_end engine;
  let report = Pmdebugger.Detector.report d in
  let sites = Hashtbl.create 32 in
  List.iter
    (fun (b : Bug.t) ->
      match Workloads.Memcached.classify_addr mc b.Bug.addr with
      | Some site ->
          let kinds = match Hashtbl.find_opt sites site with Some l -> l | None -> [] in
          if not (List.mem b.Bug.kind kinds) then Hashtbl.replace sites site (b.Bug.kind :: kinds)
      | None -> ())
    report.Bug.bugs;
  let rows =
    List.map
      (fun site ->
        let kinds = match Hashtbl.find_opt sites site with Some l -> l | None -> [] in
        [ site; (if kinds = [] then "NOT FOUND" else String.concat ", " (List.map Bug.kind_name kinds)) ])
      Workloads.Memcached.bug_sites
  in
  T.print
    ~title:
      (Printf.sprintf
         "Sec 7.4 Bug 1 family: PMDebugger finds %d/19 distinct buggy sites in memcached (Fig. 9a is it.cas)"
         (Hashtbl.length sites))
    ~header:[ "code site"; "bug kind(s) detected" ]
    rows;
  (* The same run through the other tools. *)
  let trace = record_spec Workloads.Memcached.spec 6000 in
  let count_findings mk =
    let r = Recorder.replay trace (mk ()) in
    List.length r.Bug.bugs
  in
  T.print
    ~title:
      "Sec 7.4: finding counts on the same memcached run (XFDetector's failure-point budget and PMTest's missing \
       annotations hide the sites)"
    ~header:[ "tool"; "findings" ]
    [
      [ "PMDebugger"; string_of_int (count_findings (mk_pmdebugger Pmdebugger.Detector.Strict)) ];
      [ "Pmemcheck"; string_of_int (count_findings mk_pmemcheck) ];
      [ "PMTest"; string_of_int (count_findings mk_pmtest) ];
      [ "XFDetector"; string_of_int (count_findings mk_xfdetector) ];
    ];
  (* Bug 2: redundant epoch fence in the stock hashmap_atomic create
     path (Fig. 9b); Bug 3: lack of durability in the array example's
     epoch (Fig. 9c). *)
  let run_with run =
    let engine = Engine.create () in
    let d = Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Epoch () in
    Engine.attach engine (Pmdebugger.Detector.sink d);
    run engine;
    Engine.program_end engine;
    Pmdebugger.Detector.report d
  in
  let stock_hm =
    run_with (fun e -> ignore (Workloads.Hashmap_atomic.create (Minipmdk.Pool.create e ~size:(8 lsl 20))))
  in
  let fixed_hm =
    run_with (fun e ->
        ignore (Workloads.Hashmap_atomic.create ~fixed_create:true (Minipmdk.Pool.create e ~size:(8 lsl 20))))
  in
  let stock_arr =
    run_with (fun e ->
        ignore (Workloads.Array_example.allocate (Minipmdk.Pool.create e ~size:(8 lsl 20)) ~name:"arr" ~n_elems:8))
  in
  let fixed_arr =
    run_with (fun e ->
        ignore
          (Workloads.Array_example.allocate ~fixed:true
             (Minipmdk.Pool.create e ~size:(8 lsl 20))
             ~name:"arr" ~n_elems:8))
  in
  let cell report kind = string_of_int (Bug.count_kind report kind) in
  T.print ~title:"Sec 7.4 Bugs 2 and 3: stock PMDK example paths vs Intel's fixes"
    ~header:[ "program"; "redundant-epoch-fence"; "lack-durability-in-epoch" ]
    [
      [ "hashmap_atomic (stock)"; cell stock_hm Bug.Redundant_epoch_fence; cell stock_hm Bug.Lack_durability_in_epoch ];
      [ "hashmap_atomic (fixed)"; cell fixed_hm Bug.Redundant_epoch_fence; cell fixed_hm Bug.Lack_durability_in_epoch ];
      [ "array (stock)"; cell stock_arr Bug.Redundant_epoch_fence; cell stock_arr Bug.Lack_durability_in_epoch ];
      [ "array (fixed)"; cell fixed_arr Bug.Redundant_epoch_fence; cell fixed_arr Bug.Lack_durability_in_epoch ];
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: the DESIGN.md design-choice knobs.                        *)
(* ------------------------------------------------------------------ *)

let ablation () =
  let n = 10_000 in
  let targets = [ Workloads.Btree.spec; Workloads.Hashmap_tx.spec; Workloads.Hashmap_atomic.spec ] in
  let variants =
    [
      ("hybrid (paper)", fun model -> Pmdebugger.Detector.create ~model ());
      ("array-only", fun model -> Pmdebugger.Detector.create ~model ~mode:Pmdebugger.Space.Array_only ());
      ("tree-only", fun model -> Pmdebugger.Detector.create ~model ~mode:Pmdebugger.Space.Tree_only ());
      ("no interval metadata", fun model -> Pmdebugger.Detector.create ~model ~interval_metadata:false ());
      ("merge threshold 50", fun model -> Pmdebugger.Detector.create ~model ~merge_threshold:50 ());
      ("merge threshold 5000", fun model -> Pmdebugger.Detector.create ~model ~merge_threshold:5000 ());
    ]
  in
  let rows =
    List.concat_map
      (fun (spec : W.spec) ->
        let trace = record_spec spec n in
        List.map
          (fun (vname, mk) ->
            let time =
              Harness.Timing.median_of ~repeats:3 (fun () ->
                  ignore (Recorder.replay trace (Pmdebugger.Detector.sink (mk spec.W.model))))
            in
            let d = mk spec.W.model in
            let report = Recorder.replay trace (Pmdebugger.Detector.sink d) in
            [
              spec.W.name;
              vname;
              Printf.sprintf "%.1f ms" (1000.0 *. time);
              string_of_int (List.length report.Bug.bugs);
              T.fmt_f (Pmdebugger.Detector.avg_tree_nodes_per_fence d);
            ])
          variants)
      targets
  in
  T.print ~title:"Ablation: bookkeeping design knobs (same bugs found; hybrid should beat tree-only on replay time)"
    ~header:[ "bench"; "variant"; "replay time"; "bugs"; "avg tree nodes/fence" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fault injection: explorer cost and injection/replay throughput.     *)
(* ------------------------------------------------------------------ *)

let faultinject () =
  let module FI = Faultinject in
  let module CE = FI.Crash_explore in
  (* Crash-image derivation copies the durable image per boundary, so
     explorer cost is measured on short traces; n here is workload ops,
     not events. *)
  let sizes = [ 5; 10; 20 ] in
  let recovery _ = true in
  let rows =
    List.concat_map
      (fun n ->
        let steps = FI.Replay.capture (run_spec Workloads.Btree.spec n) in
        let time boundaries max_images =
          Harness.Timing.median_of ~repeats:3 (fun () ->
              ignore (CE.explore ~boundaries ~max_images ~recovery steps))
        in
        let stats boundaries max_images =
          let r = CE.explore ~boundaries ~max_images ~recovery steps in
          (r.CE.boundaries_checked, r.CE.images_checked)
        in
        List.map
          (fun (bname, boundaries, max_images) ->
            let t = time boundaries max_images in
            let b, i = stats boundaries max_images in
            [
              "b_tree";
              string_of_int n;
              bname;
              string_of_int (Array.length steps);
              string_of_int b;
              string_of_int i;
              Printf.sprintf "%.1f ms" (1000.0 *. t);
            ])
          [ ("fences-only", CE.Fences_only, 4); ("every-op", CE.Every_op, 4); ("every-op/8img", CE.Every_op, 8) ])
      sizes
  in
  T.print
    ~title:"Crash-point explorer cost (every-op checks ~3x the boundaries of fences-only; cost scales with images)"
    ~header:[ "bench"; "n"; "boundaries"; "steps"; "checked"; "images"; "time" ]
    rows;
  (* Injection + detector replay throughput on a longer trace. *)
  let n = 2_000 in
  let steps = FI.Replay.capture (run_spec Workloads.Btree.spec n) in
  let inj_rows =
    List.map
      (fun fault ->
        let plan = FI.Sensitivity.default_plan fault in
        let t =
          Harness.Timing.median_of ~repeats:3 (fun () ->
              let mutated, _ = FI.Injector.apply plan steps in
              ignore
                (Recorder.replay
                   (FI.Replay.events_of_steps mutated)
                   (mk_pmdebugger Pmdebugger.Detector.Strict ())))
        in
        let _, injections = FI.Injector.apply plan steps in
        [
          FI.Injector.fault_name fault;
          string_of_int (Array.length steps);
          string_of_int (List.length injections);
          Printf.sprintf "%.1f ms" (1000.0 *. t);
        ])
      FI.Injector.all_faults
  in
  T.print
    ~title:(Printf.sprintf "Fault injection + detector replay (b_tree, n=%d)" n)
    ~header:[ "fault"; "steps"; "injections"; "mutate+replay" ]
    inj_rows;
  (* The full sensitivity matrix, timed. *)
  let t0 = Unix.gettimeofday () in
  let rows = FI.Sensitivity.run_matrix () in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "  sensitivity matrix: %d workloads x %d faults in %.1f ms, %s\n"
    (List.length rows)
    (List.length FI.Sensitivity.core_faults)
    (1000.0 *. dt)
    (if FI.Sensitivity.matrix_ok rows then "all detected" else "GAPS PRESENT");
  flush stdout

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: per-experiment kernels.                  *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let trace = record_spec Workloads.Btree.spec 1_000 in
  let mc_trace = record_spec Workloads.Memcached.spec 1_000 in
  let replay mk trace () = ignore (Recorder.replay trace (mk ())) in
  let tests =
    [
      Test.make ~name:"fig8.pmdebugger-btree" (Staged.stage (replay (mk_pmdebugger Pmdebugger.Detector.Epoch) trace));
      Test.make ~name:"fig8.pmemcheck-btree" (Staged.stage (replay mk_pmemcheck trace));
      Test.make ~name:"fig8.nulgrind-btree" (Staged.stage (replay (fun () -> Sink.noop "nulgrind") trace));
      Test.make ~name:"fig10.pmdebugger-memcached"
        (Staged.stage (replay (mk_pmdebugger Pmdebugger.Detector.Strict) mc_trace));
      Test.make ~name:"table_sota.pmtest-btree" (Staged.stage (replay mk_pmtest trace));
      Test.make ~name:"table6.bugcase-sweep"
        (Staged.stage (fun () ->
             ignore (Bugbench.Eval.run_case Bugbench.Eval.PMDebugger (List.hd Bugbench.Cases.buggy))));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  Printf.printf "\nBechamel micro-kernels (ns/run):\n";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-32s %14.0f\n" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        results)
    tests;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Machine-readable run report: BENCH_pr2.json.                        *)
(* ------------------------------------------------------------------ *)

let quick = ref false

let report () =
  let q = !quick in
  let sizes = if q then [ 500 ] else [ 1_000; 10_000 ] in
  let specs = if q then [ Workloads.Btree.spec ] else [ Workloads.Btree.spec; Workloads.Hashmap_tx.spec ] in
  let repeats = if q then 1 else 3 in
  let rows =
    List.concat_map
      (fun (spec : W.spec) ->
        List.map
          (fun n ->
            let m, _ =
              Harness.Timing.measure ~repeats ~run:(run_spec spec n)
                ~detectors:[ ("pmdebugger", mk_pmdebugger spec.W.model); ("pmemcheck", mk_pmemcheck) ]
                ()
            in
            (spec.W.name, n, m, List.assoc "pmdebugger" m.Harness.Timing.dispatch))
          sizes)
      specs
  in
  T.print ~title:"Run report: slowdowns + per-event dispatch latency (PMDebugger)"
    ~header:[ "bench"; "n"; "native"; "Nulgrind"; "PMDebugger"; "Pmemcheck"; "p50 disp."; "p95 disp."; "p99 disp." ]
    (List.map
       (fun (name, n, m, prof) ->
         let sd t = T.fmt_x (Harness.Timing.slowdown m t) in
         [
           name;
           string_of_int n;
           Printf.sprintf "%.1f ms" (1000.0 *. m.Harness.Timing.native_s);
           sd m.Harness.Timing.nulgrind_s;
           sd (List.assoc "pmdebugger" m.Harness.Timing.detector_s);
           sd (List.assoc "pmemcheck" m.Harness.Timing.detector_s);
           Printf.sprintf "%.0f ns" (1e9 *. prof.Harness.Timing.p50_s);
           Printf.sprintf "%.0f ns" (1e9 *. prof.Harness.Timing.p95_s);
           Printf.sprintf "%.0f ns" (1e9 *. prof.Harness.Timing.p99_s);
         ])
       rows);
  (* One metrics-enabled replay supplies the bookkeeping telemetry the
     slowdown numbers can't show (array hits vs tree spills, reorgs...). *)
  let metrics = Obs.Metrics.create () in
  let spec = Workloads.Btree.spec in
  let trace = record_spec spec (if q then 500 else 1_000) in
  let engine = Engine.create ~metrics () in
  Engine.attach engine
    (Pmdebugger.Detector.sink (Pmdebugger.Detector.create ~model:spec.W.model ~metrics ()));
  Array.iter (Engine.emit engine) trace;
  ignore (Engine.finish_all engine);
  let open Obs.Json in
  let row_json (name, n, m, prof) =
    let sd t = Float (Harness.Timing.slowdown m t) in
    Obj
      [
        ("bench", Str name);
        ("n", Int n);
        ("native_s", Float m.Harness.Timing.native_s);
        ( "slowdowns",
          Obj
            [
              ("nulgrind", sd m.Harness.Timing.nulgrind_s);
              ("pmdebugger", sd (List.assoc "pmdebugger" m.Harness.Timing.detector_s));
              ("pmemcheck", sd (List.assoc "pmemcheck" m.Harness.Timing.detector_s));
            ] );
        ("dispatch_p50_s", Float prof.Harness.Timing.p50_s);
        ("dispatch_p95_s", Float prof.Harness.Timing.p95_s);
        ("dispatch_p99_s", Float prof.Harness.Timing.p99_s);
        ("dispatch_samples", Int prof.Harness.Timing.samples);
      ]
  in
  let json =
    Obj
      [
        ("schema", Str "pmdb-bench/v1");
        ("quick", Bool q);
        ("rows", List (Stdlib.List.map row_json rows));
        ("telemetry", Obs.Metrics.to_json metrics);
      ]
  in
  to_file "BENCH_pr2.json" json;
  Printf.printf "wrote BENCH_pr2.json (%d row(s), quick=%b)\n" (Stdlib.List.length rows) q;
  (* The same trace as a Perfetto timeline — the CI artifact a human
     loads in ui.perfetto.dev to eyeball a regression the counters
     flagged. *)
  let tb = Harness.Timeline.of_trace trace in
  Obs.Json.to_file "BENCH_timeline.json" (Obs.Perfetto.to_json tb);
  Printf.printf "wrote BENCH_timeline.json (%d timeline event(s))\n" (Obs.Perfetto.length tb);
  flush stdout

(* ------------------------------------------------------------------ *)
(* Streaming replay: constant-memory file replay vs materialized.      *)
(* Writes BENCH_pr3.json.                                              *)
(* ------------------------------------------------------------------ *)

(* A synthetic trace big enough that holding it in memory shows up in
   Gc.stat: bursts of four stores to one cache line, one clwb and one
   fence per burst, cycling over a bounded region. Detector state stays
   O(region), so the only O(trace) storage candidate is the trace
   itself — exactly what the streamed path must not hold. *)
(* With [dirty], every 509th burst skips its writeback: the overwrites
   on the next lap and the leftovers at program end give the detector
   real findings, so a report-equality gate checks more than "both
   empty". *)
let generate_stream_trace ?(dirty = false) path ~bursts =
  let lines = 4096 in
  Trace_io.save_stream path (fun emit ->
      emit (Event.Register_pmem { base = 0; size = lines * 64 });
      for i = 0 to bursts - 1 do
        let addr = i mod lines * 64 in
        for s = 0 to 3 do
          emit (Event.Store { addr = addr + (s * 16); size = 16; tid = 0 })
        done;
        if not (dirty && i mod 509 = 0) then emit (Event.Clf { addr; size = 64; kind = Event.Clwb; tid = 0 });
        emit (Event.Fence { tid = 0 })
      done;
      emit Event.Program_end)

let live_words () =
  Gc.compact ();
  (Gc.stat ()).Gc.live_words

(* Every 128th event is individually timed: enough samples for p50/p95
   without the clock dominating the run. *)
let sampled_emit hist emit =
  let k = ref 0 in
  fun ev ->
    incr k;
    if !k land 127 = 0 then begin
      let t = Unix.gettimeofday () in
      emit ev;
      Obs.Metrics.hist_observe hist (Unix.gettimeofday () -. t)
    end
    else emit ev

let streaming () =
  let q = !quick in
  let bursts = if q then 20_000 else 170_000 in
  let path = Filename.temp_file "pmdb_streaming" ".pmt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let events = generate_stream_trace path ~bursts in
  let gen_s = Unix.gettimeofday () -. t0 in
  let mk () = mk_pmdebugger Pmdebugger.Detector.Strict () in
  let metrics = Obs.Metrics.create () in
  (* The detector allocates a fixed footprint up front (slot array +
     shadow for the registered region) — measure it once so the deltas
     below isolate storage attributable to trace LENGTH, which is what
     streaming must keep constant. *)
  let detector_words =
    let before = live_words () in
    let sink = mk () in
    sink.Sink.on_event (Event.Register_pmem { base = 0; size = 4096 * 64 });
    sink.Sink.on_event (Event.Store { addr = 0; size = 16; tid = 0 });
    let dw = live_words () - before in
    ignore (sink.Sink.finish ());
    dw
  in
  let base = live_words () in
  (* Streamed, timed. *)
  let hist_streamed = Obs.Metrics.hist_create () in
  let t0 = Unix.gettimeofday () in
  let report_streamed =
    Recorder.replay_stream
      (fun emit ->
        match Trace_io.iter_file ~metrics path ~f:(sampled_emit hist_streamed emit) with
        | Ok _ -> ()
        | Error msg -> failwith msg)
      (mk ())
  in
  let streamed_s = Unix.gettimeofday () -. t0 in
  (* Streamed, memory probe (untimed: Gc.compact mid-replay). *)
  let streamed_peak = ref base in
  let seen = ref 0 in
  ignore
    (Recorder.replay_stream
       (fun emit ->
         match
           Trace_io.iter_file path ~f:(fun ev ->
               incr seen;
               if !seen = events / 2 then streamed_peak := live_words ();
               emit ev)
         with
         | Ok _ -> ()
         | Error msg -> failwith msg)
       (mk ()));
  let streamed_delta = max 0 (!streamed_peak - base - detector_words) in
  (* Materialized: load the whole trace, then replay the array. *)
  let base_mat = live_words () in
  let t0 = Unix.gettimeofday () in
  let lenient = match Trace_io.load_lenient path with Ok l -> l | Error msg -> failwith msg in
  let load_s = Unix.gettimeofday () -. t0 in
  let mat_delta = max 0 (live_words () - base_mat) in
  let hist_mat = Obs.Metrics.hist_create () in
  let t0 = Unix.gettimeofday () in
  let report_mat =
    Recorder.replay_stream
      (fun emit -> Array.iter (sampled_emit hist_mat emit) lenient.Trace_io.trace)
      (mk ())
  in
  let mat_s = load_s +. (Unix.gettimeofday () -. t0) in
  let reports_match =
    report_streamed.Bug.events_processed = report_mat.Bug.events_processed
    && report_streamed.Bug.bugs = report_mat.Bug.bugs
  in
  let constant_memory = streamed_delta * 4 < mat_delta in
  let p hist frac = Obs.Metrics.quantile (Obs.Metrics.hist_view hist) frac in
  let eps t = float_of_int events /. t in
  T.print
    ~title:
      (Printf.sprintf "Streaming replay: %d events through iter_file vs a materialized array (quick=%b)" events q)
    ~header:[ "path"; "replay"; "events/s"; "p50 disp."; "p95 disp."; "live words held" ]
    [
      [
        "streamed";
        Printf.sprintf "%.2f s" streamed_s;
        Printf.sprintf "%.0f" (eps streamed_s);
        Printf.sprintf "%.0f ns" (1e9 *. p hist_streamed 0.5);
        Printf.sprintf "%.0f ns" (1e9 *. p hist_streamed 0.95);
        string_of_int streamed_delta;
      ];
      [
        "materialized";
        Printf.sprintf "%.2f s" mat_s;
        Printf.sprintf "%.0f" (eps mat_s);
        Printf.sprintf "%.0f ns" (1e9 *. p hist_mat 0.5);
        Printf.sprintf "%.0f ns" (1e9 *. p hist_mat 0.95);
        string_of_int mat_delta;
      ];
    ];
  Printf.printf "  reports match: %b (%d event(s), %d finding(s)); streamed holds %.1fx less\n" reports_match
    report_streamed.Bug.events_processed
    (List.length report_streamed.Bug.bugs)
    (float_of_int mat_delta /. float_of_int (max 1 streamed_delta));
  let open Obs.Json in
  let row name total_s hist delta =
    Obj
      [
        ("bench", Str name);
        ("n", Int events);
        ("native_s", Float gen_s);
        ("slowdowns", Obj [ ("replay_vs_generate", Float (total_s /. gen_s)) ]);
        ("dispatch_p50_s", Float (p hist 0.5));
        ("dispatch_p95_s", Float (p hist 0.95));
        ("dispatch_p99_s", Float (p hist 0.99));
        ("events_per_sec", Float (eps total_s));
        ("live_words_delta", Int delta);
      ]
  in
  let json =
    Obj
      [
        ("schema", Str "pmdb-bench/v1");
        ("quick", Bool q);
        ("events", Int events);
        ("reports_match", Bool reports_match);
        ("constant_memory", Bool constant_memory);
        ( "rows",
          List
            [
              row "replay-streamed" streamed_s hist_streamed streamed_delta;
              row "replay-materialized" mat_s hist_mat mat_delta;
            ] );
        ("telemetry", Obs.Metrics.to_json metrics);
      ]
  in
  to_file "BENCH_pr3.json" json;
  Printf.printf "wrote BENCH_pr3.json (events=%d, quick=%b)\n" events q;
  flush stdout;
  if not reports_match then begin
    Printf.eprintf "streaming: FAILED — streamed and materialized replays disagree\n";
    exit 1
  end;
  if not constant_memory then begin
    Printf.eprintf "streaming: FAILED — streamed replay held %d live words (materialized: %d); not constant-memory\n"
      streamed_delta mat_delta;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Sharded detection: replay the streaming trace through the            *)
(* domain-parallel Shard_router over both transports — the frame-       *)
(* batched default at 1/2/4/8 shards plus a frame-size sweep, and the   *)
(* per-event baseline at 1/2/4 — and check every merged report against  *)
(* the plain single-detector run. Writes BENCH_pr9.json.                *)
(* ------------------------------------------------------------------ *)

let sharding () =
  let q = !quick in
  let bursts = if q then 20_000 else 170_000 in
  let path = Filename.temp_file "pmdb_sharding" ".pmt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let events = generate_stream_trace ~dirty:true path ~bursts in
  let gen_s = Unix.gettimeofday () -. t0 in
  (* Load once: every configuration replays the identical in-memory
     trace, so the curve measures detection throughput, not disk. *)
  let trace = match Trace_io.load_lenient path with Ok l -> l.Trace_io.trace | Error msg -> failwith msg in
  let worker _shard =
    (* Per-shard detectors run on worker domains: metrics must stay
       disabled there; the router owns the shared registry. *)
    Pmdebugger.Detector.worker (Pmdebugger.Detector.create ~model:Pmdebugger.Detector.Strict ~walk_dedup:false ())
  in
  (* The plain detector reports in discovery order, the merge in
     canonical order; sort both before comparing. *)
  let canon r = Bug.render_canonical { r with Bug.bugs = List.sort Bug.compare_canonical r.Bug.bugs } in
  let run_once mk_sink =
    let hist = Obs.Metrics.hist_create () in
    let t0 = Unix.gettimeofday () in
    let report = Recorder.replay_stream (fun emit -> Array.iter (sampled_emit hist emit) trace) (mk_sink ()) in
    (report, Unix.gettimeofday () -. t0, hist)
  in
  let plain_report, plain_s, plain_hist = run_once (fun () -> mk_pmdebugger Pmdebugger.Detector.Strict ()) in
  (* The curve: the framed transport (default frame size) against the
     per-event baseline at matching shard counts, plus a frame-size
     sweep at 4 shards to show where the amortization saturates. Labels
     carry transport + shard count so rows are self-describing. *)
  let fs_default = Shard_router.default_frame_size in
  let configs =
    List.concat
      [
        List.map (fun n -> (Printf.sprintf "per-event-shards-%d" n, n, 0)) [ 1; 2; 4 ];
        List.map (fun n -> (Printf.sprintf "frames-shards-%d" n, n, fs_default)) [ 1; 2; 4; 8 ];
        List.map (fun fs -> (Printf.sprintf "frames-fs-%d-shards-4" fs, 4, fs)) [ 16; 4096 ];
      ]
  in
  let sharded =
    List.map
      (fun (name, n, fs) ->
        let reg = Obs.Metrics.create () in
        let report, dt, hist =
          run_once (fun () -> Shard_router.sink ~shards:n ~frame_size:fs ~metrics:reg worker)
        in
        (name, report, dt, hist, reg))
      configs
  in
  let expected = canon plain_report in
  let reports_match = List.for_all (fun (_, r, _, _, _) -> canon r = expected) sharded in
  let time_of name =
    match List.find_opt (fun (name', _, _, _, _) -> name' = name) sharded with
    | Some (_, _, dt, _, _) -> dt
    | None -> infinity
  in
  (* Each transport's speedup is measured against its own 1-shard run:
     that isolates scaling from constant transport overhead. Per-event
     reproduced 0.63x at 4 shards in BENCH_pr5 — the regression frames
     exist to fix. *)
  let frames_1 = time_of "frames-shards-1" in
  let per_event_1 = time_of "per-event-shards-1" in
  let speedup_frames_4 = frames_1 /. time_of "frames-shards-4" in
  let speedup_per_event_4 = per_event_1 /. time_of "per-event-shards-4" in
  let host_cores = Domain.recommended_domain_count () in
  let p hist frac = Obs.Metrics.quantile (Obs.Metrics.hist_view hist) frac in
  let eps t = float_of_int events /. t in
  let row_print name dt hist speedup =
    [
      name;
      Printf.sprintf "%.2f s" dt;
      Printf.sprintf "%.0f" (eps dt);
      Printf.sprintf "%.0f ns" (1e9 *. p hist 0.5);
      Printf.sprintf "%.0f ns" (1e9 *. p hist 0.95);
      (match speedup with None -> "-" | Some s -> T.fmt_x s);
    ]
  in
  T.print
    ~title:
      (Printf.sprintf "Sharded detection: %d events, %d host core(s) (quick=%b)" events host_cores q)
    ~header:[ "config"; "replay"; "events/s"; "p50 disp."; "p95 disp."; "vs same 1-shard" ]
    (row_print "plain" plain_s plain_hist None
    :: List.map
         (fun (name, _, dt, hist, _) ->
           let base = if String.length name >= 6 && String.sub name 0 6 = "frames" then frames_1 else per_event_1 in
           row_print name dt hist (Some (base /. dt)))
         sharded);
  Printf.printf
    "  reports match: %b (%d finding(s)); 4-shard speedup: frames %.2fx, per-event %.2fx (each over its own \
     1-shard run) on %d core(s)\n"
    reports_match
    (List.length plain_report.Bug.bugs)
    speedup_frames_4 speedup_per_event_4 host_cores;
  if host_cores < 4 then
    Printf.printf
      "  note: fewer than 4 cores — the curve measures correctness and overhead, not parallel speedup\n";
  let open Obs.Json in
  (* Stage attribution per row: the per-shard residency/decode
     histograms folded bucket-wise across labels (the worker registries
     are absorbed into the router's at finish), p50 interpolated. The
     plain run has no hand-off, so its stage fields are null. *)
  let stage_p50 reg name =
    let folded =
      List.fold_left
        (fun acc (s : Obs.Metrics.sample) ->
          match (s.Obs.Metrics.value, acc) with
          | Obs.Metrics.V_hist h, None when s.Obs.Metrics.name = name -> Some h
          | Obs.Metrics.V_hist h, Some t when s.Obs.Metrics.name = name && h.Obs.Metrics.h_bounds = t.Obs.Metrics.h_bounds ->
              Array.iteri (fun i c -> t.Obs.Metrics.h_counts.(i) <- t.Obs.Metrics.h_counts.(i) + c) h.Obs.Metrics.h_counts;
              Some
                {
                  t with
                  Obs.Metrics.h_sum = t.Obs.Metrics.h_sum +. h.Obs.Metrics.h_sum;
                  h_count = t.Obs.Metrics.h_count + h.Obs.Metrics.h_count;
                  h_max = Float.max t.Obs.Metrics.h_max h.Obs.Metrics.h_max;
                }
          | _ -> acc)
        None (Obs.Metrics.snapshot reg)
    in
    match folded with
    | Some h when h.Obs.Metrics.h_count > 0 -> Float (Obs.Metrics.quantile h 0.5)
    | _ -> Null
  in
  let row ?reg name total_s hist =
    let stage name = match reg with Some r -> stage_p50 r name | None -> Null in
    Obj
      [
        ("bench", Str name);
        ("n", Int events);
        ("native_s", Float gen_s);
        ( "slowdowns",
          Obj
            [
              ("replay_vs_generate", Float (total_s /. gen_s));
              ("vs_frames_single_shard", Float (total_s /. frames_1));
            ] );
        ("dispatch_p50_s", Float (p hist 0.5));
        ("dispatch_p95_s", Float (p hist 0.95));
        ("dispatch_p99_s", Float (p hist 0.99));
        ("residency_p50_s", stage "shard_frame_residency_seconds");
        ("decode_p50_s", stage "shard_frame_decode_seconds");
        ("events_per_sec", Float (eps total_s));
      ]
  in
  (* The framed 4-shard registry carries the per-shard counters
     (shard_events_total{shard}, shard_barrier_stalls_total, queue
     depth peaks, per-frame worker latency) — that's the telemetry
     worth diffing in CI. *)
  let telemetry =
    match List.find_opt (fun (name, _, _, _, _) -> name = "frames-shards-4") sharded with
    | Some (_, _, _, _, reg) -> Obs.Metrics.to_json reg
    | None -> Obs.Metrics.to_json (Obs.Metrics.create ())
  in
  let json =
    Obj
      [
        ("schema", Str "pmdb-bench/v1");
        ("quick", Bool q);
        ("events", Int events);
        ("host_cores", Int host_cores);
        ("frame_size", Int fs_default);
        ("reports_match", Bool reports_match);
        ("speedup_frames_4_over_1", Float speedup_frames_4);
        ("speedup_per_event_4_over_1", Float speedup_per_event_4);
        ( "rows",
          List
            (row "replay-plain" plain_s plain_hist
            :: Stdlib.List.map
                 (fun (name, _, dt, hist, reg) -> row ~reg (Printf.sprintf "replay-%s" name) dt hist)
                 sharded) );
        ("telemetry", telemetry);
      ]
  in
  to_file "BENCH_pr9.json" json;
  Printf.printf "wrote BENCH_pr9.json (events=%d, quick=%b)\n" events q;
  flush stdout;
  if not reports_match then begin
    Printf.eprintf "sharding: FAILED — sharded and single-detector replays disagree\n";
    List.iter
      (fun (name, r, _, _, _) ->
        if canon r <> expected then
          Printf.eprintf "  %s: %d finding(s) vs expected %d\n" name (List.length r.Bug.bugs)
            (List.length plain_report.Bug.bugs))
      sharded;
    exit 1
  end;
  (* The >=2x scaling target is only meaningful where 4 worker domains
     can actually run in parallel; on smaller hosts the JSON still
     records the measured curve. *)
  if host_cores > 1 && speedup_frames_4 < 1.0 then
    Printf.eprintf
      "sharding: WARNING — framed 4-shard run slower than framed 1-shard (%.2fx) on %d cores\n" speedup_frames_4
      host_cores

(* ------------------------------------------------------------------ *)
(* pmdb serve soak: N concurrent clients streaming the same synthetic  *)
(* trace into an in-process daemon; gates on report equality with the  *)
(* offline replay and on flat RSS across waves. Writes BENCH_pr6.json. *)
(* ------------------------------------------------------------------ *)

let rss_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_lines with
  | lines ->
      List.fold_left
        (fun acc line ->
          match acc with
          | Some _ -> acc
          | None ->
              if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
                Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Option.some
              else None)
        None lines
  | exception Sys_error _ -> None

let serve_soak () =
  let q = !quick in
  let clients = if q then 4 else 16 in
  let rounds = if q then 1 else 3 in
  let bursts = if q then 4_000 else 20_000 in
  let path = Filename.temp_file "pmdb_serve" ".pmt" in
  let socket = Filename.temp_file "pmdb_serve" ".sock" in
  Sys.remove socket;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
  @@ fun () ->
  let events = generate_stream_trace ~dirty:true path ~bursts in
  let body = In_channel.with_open_bin path In_channel.input_all in
  let mk () = mk_pmdebugger Pmdebugger.Detector.Strict () in
  (* Offline ground truth: the same trace through the same sink. *)
  let trace = match Trace_io.load_lenient path with Ok l -> l.Trace_io.trace | Error msg -> failwith msg in
  let t0 = Unix.gettimeofday () in
  let offline_report = Recorder.replay trace (mk ()) in
  let offline_s = Unix.gettimeofday () -. t0 in
  let canon r = Bug.render_canonical { r with Bug.bugs = List.sort Bug.compare_canonical r.Bug.bugs } in
  let expected = canon offline_report in
  let metrics = Obs.Metrics.create () in
  let workers = min 4 (max 2 (Domain.recommended_domain_count () - 2)) in
  let cfg = { (Serve.Daemon.default_config ~socket) with Serve.Daemon.workers; idle_timeout = 30.0 } in
  let daemon = Serve.Daemon.create ~metrics ~make_sink:(fun ~heatmap:_ -> mk ()) cfg in
  let daemon_domain = Domain.spawn (fun () -> Serve.Daemon.run daemon) in
  let run_wave wave n =
    let doms =
      List.init n (fun i ->
          Domain.spawn (fun () ->
              Serve.Client.replay_string ~socket ~name:(Printf.sprintf "w%d-c%d" wave i) body))
    in
    List.map Domain.join doms
  in
  let check frames =
    List.iteri
      (fun i frame ->
        match frame with
        | Error msg -> failwith (Printf.sprintf "client %d: %s" i msg)
        | Ok f -> (
            if f.Serve.Wire.status <> Serve.Status.Ok then
              failwith
                (Printf.sprintf "client %d: status %s" i (Serve.Status.name f.Serve.Wire.status));
            match f.Serve.Wire.report with
            | Some r when canon r = expected -> ()
            | Some r ->
                failwith
                  (Printf.sprintf "client %d: report mismatch (%d finding(s) vs offline %d)" i
                     (List.length r.Bug.bugs)
                     (List.length offline_report.Bug.bugs))
            | None -> failwith (Printf.sprintf "client %d: no report" i)))
      frames
  in
  (* Warmup wave, then the RSS baseline, then the measured waves: any
     per-session state the daemon leaks shows up as RSS growth across
     identical waves. *)
  check (run_wave 0 (min 4 clients));
  Gc.compact ();
  let rss_before = rss_kb () in
  let t0 = Unix.gettimeofday () in
  for wave = 1 to rounds do
    check (run_wave wave clients)
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  Gc.compact ();
  let rss_after = rss_kb () in
  let snap = match Serve.Client.stats ~socket with Ok s -> s | Error msg -> failwith msg in
  (match Serve.Client.stop ~socket with Ok () -> () | Error msg -> failwith msg);
  Domain.join daemon_domain;
  let ingest =
    match Obs.Metrics.find snap "serve_ingest_seconds" with
    | Some (Obs.Metrics.V_hist hv) -> hv
    | _ -> failwith "daemon stats: no serve_ingest_seconds histogram"
  in
  let quant frac = Obs.Metrics.quantile ingest frac in
  (* Domain-safe telemetry gate: the merged snapshot's per-worker
     serve_worker_events_total{domain} series must sum to exactly the
     events the dispatch domain submitted — every event the daemon
     ingested is accounted for on some worker domain. *)
  let counter_sum name =
    List.fold_left
      (fun acc (s : Obs.Metrics.sample) ->
        match s.Obs.Metrics.value with
        | Obs.Metrics.V_counter n when s.Obs.Metrics.name = name -> acc + n
        | _ -> acc)
      0 snap
  in
  let worker_events = counter_sum "serve_worker_events_total" in
  let submitted = counter_sum "serve_events_total" in
  if worker_events <> submitted then
    failwith
      (Printf.sprintf "worker telemetry mismatch: sum(serve_worker_events_total)=%d, serve_events_total=%d"
         worker_events submitted);
  let total_events = events * clients * rounds in
  let events_per_sec = float_of_int total_events /. wall_s in
  let rss_flat, rss_note =
    match (rss_before, rss_after) with
    | Some before, Some after ->
        (* Flat = bounded growth across identical waves: slack for
           allocator jitter, but nowhere near a per-wave leak. *)
        let slack_kb = max (before / 2) (64 * 1024) in
        (after - before <= slack_kb, Printf.sprintf "%d kB -> %d kB" before after)
    | _ -> (true, "VmRSS unavailable; gate skipped")
  in
  T.print
    ~title:
      (Printf.sprintf "pmdb serve soak: %d wave(s) x %d client(s) x %d events (quick=%b)" rounds clients events q)
    ~header:[ "metric"; "value" ]
    [
      [ "offline replay"; Printf.sprintf "%.2f s" offline_s ];
      [ "soak wall clock"; Printf.sprintf "%.2f s" wall_s ];
      [ "aggregate events/s"; Printf.sprintf "%.0f" events_per_sec ];
      [ "ingest p50"; Printf.sprintf "%.0f ns" (1e9 *. quant 0.5) ];
      [ "ingest p95"; Printf.sprintf "%.0f ns" (1e9 *. quant 0.95) ];
      [ "ingest p99"; Printf.sprintf "%.0f ns" (1e9 *. quant 0.99) ];
      [ "RSS"; rss_note ];
    ];
  Printf.printf "  all %d session report(s) identical to offline replay; RSS flat: %b\n"
    ((min 4 clients) + (clients * rounds))
    rss_flat;
  Printf.printf "  worker domains account for all %d ingested event(s) (sum of serve_worker_events_total)\n"
    worker_events;
  let open Obs.Json in
  let row =
    Obj
      [
        ("bench", Str (Printf.sprintf "serve-%d-clients" clients));
        ("n", Int total_events);
        ("native_s", Float offline_s);
        ( "slowdowns",
          Obj
            [
              (* Wall clock for the whole soak against serial offline
                 replays of the same load: < 1.0 means the daemon's
                 worker parallelism is paying for the socket hop. *)
              ("daemon_vs_offline_serial", Float (wall_s /. (offline_s *. float_of_int (clients * rounds))));
            ] );
        ("dispatch_p50_s", Float (quant 0.5));
        ("dispatch_p95_s", Float (quant 0.95));
        ("dispatch_p99_s", Float (quant 0.99));
        ("worker_events_total", Int worker_events);
        ("events_per_sec", Float events_per_sec);
        ("clients", Int clients);
        ("rounds", Int rounds);
        ("workers", Int workers);
      ]
  in
  let json =
    Obj
      [
        ("schema", Str "pmdb-bench/v1");
        ("quick", Bool q);
        ("events", Int total_events);
        ("reports_match", Bool true);
        ("rss_flat", Bool rss_flat);
        ("rss_before_kb", match rss_before with Some k -> Int k | None -> Null);
        ("rss_after_kb", match rss_after with Some k -> Int k | None -> Null);
        ("rows", List [ row ]);
        ("telemetry", Obs.Metrics.snapshot_to_json snap);
      ]
  in
  to_file "BENCH_pr6.json" json;
  Printf.printf "wrote BENCH_pr6.json (events=%d, quick=%b)\n" total_events q;
  flush stdout;
  if not rss_flat then begin
    Printf.eprintf "serve: FAILED — RSS grew across identical waves (%s); the daemon leaks per-session state\n"
      rss_note;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Invariant-guided crash-state exploration: bugs-found-per-N-images    *)
(* curves for guided/sampled vs the exhaustive scan, on a long          *)
(* commit-rounds trace with a sparse planted ordering bug plus the      *)
(* cross-failure bugbench cases. Writes BENCH_pr10.json and gates on    *)
(* (a) every strategy's failure set being a subset of exhaustive's,     *)
(* (b) unbounded guided finding exactly the exhaustive set, and         *)
(* (c) guided recovering >= 90% of exhaustive's bugs within 25% of its  *)
(* image spend.                                                         *)
(* ------------------------------------------------------------------ *)

let crashexplore () =
  let module FI = Faultinject in
  let module CE = FI.Crash_explore in
  let q = !quick in
  (* The rounds trace: R backup/counter commit rounds on two shared
     lines. Correct rounds persist the backup before the counter that
     must never exceed it; the planted rounds run the counter ahead —
     the xfail_counter_before_backup shape, but buried in a long
     otherwise-correct trace so risk ranking has something to rank. *)
  (* A planted round also reverses the persist cycle, so the round after
     it opens a spurious "echo" window of similar rank; the budget floor
     that matters is true + echo windows (~34 images), which 25% clears
     at these sizes with margin. *)
  let rounds = if q then 16 else 40 in
  let planted = [ (rounds / 3) + 1; (2 * rounds / 3) + 1 ] in
  let backup_addr = 0 and counter_addr = 64 in
  let run e =
    Engine.register_pmem e ~base:0 ~size:4096;
    for r = 1 to rounds do
      let v = Int64.of_int r in
      let commit ~addr = Engine.store_i64 e ~addr v; Engine.persist e ~addr ~size:8 in
      if List.mem r planted then begin
        commit ~addr:counter_addr;
        commit ~addr:backup_addr
      end
      else begin
        commit ~addr:backup_addr;
        commit ~addr:counter_addr
      end
    done
  in
  let recovery img =
    Int64.compare (Pmem.Image.get_i64 img counter_addr) (Pmem.Image.get_i64 img backup_addr) <= 0
  in
  let t0 = Unix.gettimeofday () in
  let steps = FI.Replay.capture run in
  let gen_s = Unix.gettimeofday () -. t0 in
  let max_images = 4 in
  let indexes_of (o : CE.outcome) = List.map (fun f -> f.CE.index) o.result.CE.failures in
  (* Per-image recovery-check latency feeds the dispatch percentiles. *)
  let run_strategy ?budget ?metrics strat =
    let hist = Obs.Metrics.hist_create () in
    let timed img =
      let t0 = Unix.gettimeofday () in
      let ok = recovery img in
      Obs.Metrics.hist_observe hist (Unix.gettimeofday () -. t0);
      ok
    in
    let plan = CE.make_plan ~max_images ?budget steps in
    let t0 = Unix.gettimeofday () in
    let o = CE.run ?metrics ~recovery:timed plan strat in
    (o, Unix.gettimeofday () -. t0, hist)
  in
  let ex, ex_s, ex_hist = run_strategy CE.exhaustive in
  let ex_set = indexes_of ex in
  let ex_bugs = List.length ex_set and ex_images = ex.CE.result.CE.images_checked in
  let guided_reg = Obs.Metrics.create () in
  let fractions = [ 5; 10; 25; 50; 100 ] in
  let curve =
    List.concat_map
      (fun (sname, strat) ->
        List.map
          (fun pct ->
            let budget = max 1 (ex_images * pct / 100) in
            let metrics = if sname = "guided" && pct = 25 then Some guided_reg else None in
            let o, dt, hist = run_strategy ~budget ?metrics strat in
            (sname, pct, budget, o, dt, hist))
          fractions)
      [ ("guided", CE.guided); ("sampled", CE.sampled) ]
  in
  let guided_unbounded, _, _ = run_strategy CE.guided in
  (* Gates on the bugbench cross-failure cases: sound (subset) bounded
     runs, and unbounded guided finding exactly the exhaustive set. *)
  let case_gates =
    List.filter_map
      (fun (c : Bugbench.Cases.t) ->
        match c.Bugbench.Cases.recovery with
        | None -> None
        | Some recovery ->
            let steps = FI.Replay.capture c.Bugbench.Cases.run in
            let explore ?budget strat =
              indexes_of (CE.run ~recovery (CE.make_plan ~max_images ?budget steps) strat)
            in
            let full = explore CE.exhaustive in
            let g = explore CE.guided in
            let gb = explore ~budget:8 CE.guided in
            let sb = explore ~budget:8 CE.sampled in
            let subset l = List.for_all (fun i -> List.mem i full) l in
            Some (c.Bugbench.Cases.id, g = full, subset gb && subset sb))
      Bugbench.Cases.buggy
  in
  let sound_cases = List.for_all (fun (_, _, s) -> s) case_gates in
  let complete_cases = List.for_all (fun (_, eq, _) -> eq) case_gates in
  let sound_curve =
    List.for_all (fun (_, _, _, o, _, _) -> List.for_all (fun i -> List.mem i ex_set) (indexes_of o)) curve
  in
  let guided_complete = indexes_of guided_unbounded = ex_set in
  let bugs_at sname pct =
    match List.find_opt (fun (s, p, _, _, _, _) -> s = sname && p = pct) curve with
    | Some (_, _, _, o, _, _) -> List.length (indexes_of o)
    | None -> 0
  in
  let images_at sname pct =
    match List.find_opt (fun (s, p, _, _, _, _) -> s = sname && p = pct) curve with
    | Some (_, _, _, o, _, _) -> o.CE.result.CE.images_checked
    | None -> 0
  in
  let guided_25 = bugs_at "guided" 25 in
  let guided_25_images = images_at "guided" 25 in
  let hit_rate = float_of_int guided_25 /. float_of_int (max 1 ex_bugs) in
  let per_100 images bugs = if images = 0 then 0.0 else 100.0 *. float_of_int bugs /. float_of_int images in
  let p hist frac = Obs.Metrics.quantile (Obs.Metrics.hist_view hist) frac in
  T.print
    ~title:
      (Printf.sprintf
         "Invariant-guided exploration: %d rounds, %d planted; exhaustive %d bug(s) / %d image(s) (quick=%b)"
         rounds (List.length planted) ex_bugs ex_images q)
    ~header:[ "strategy"; "budget"; "images"; "bugs"; "bugs/100img"; "time" ]
    ([ "exhaustive"; "-"; string_of_int ex_images; string_of_int ex_bugs;
       Printf.sprintf "%.1f" (per_100 ex_images ex_bugs); Printf.sprintf "%.1f ms" (1000.0 *. ex_s) ]
    :: List.map
         (fun (sname, pct, budget, o, dt, _) ->
           let bugs = List.length (indexes_of o) in
           [ sname; Printf.sprintf "%d%% (%d)" pct budget;
             string_of_int o.CE.result.CE.images_checked; string_of_int bugs;
             Printf.sprintf "%.1f" (per_100 o.CE.result.CE.images_checked bugs);
             Printf.sprintf "%.1f ms" (1000.0 *. dt) ])
         curve);
  Printf.printf
    "  guided@25%%: %d/%d bug(s) in %d/%d image(s) (%.0f%% of bugs at %.0f%% of images); soundness %b, guided-complete %b\n"
    guided_25 ex_bugs guided_25_images ex_images (100.0 *. hit_rate)
    (100.0 *. float_of_int guided_25_images /. float_of_int (max 1 ex_images))
    (sound_curve && sound_cases) (guided_complete && complete_cases);
  let open Obs.Json in
  let row name images bugs dt hist =
    Obj
      [
        ("bench", Str name);
        ("n", Int images);
        ("native_s", Float gen_s);
        ( "slowdowns",
          Obj
            [
              ("images_vs_exhaustive", Float (float_of_int images /. float_of_int (max 1 ex_images)));
              ("bugs_vs_exhaustive", Float (float_of_int bugs /. float_of_int (max 1 ex_bugs)));
              ("wall_vs_exhaustive", Float (dt /. ex_s));
            ] );
        ("dispatch_p50_s", Float (p hist 0.5));
        ("dispatch_p95_s", Float (p hist 0.95));
        ("dispatch_p99_s", Float (p hist 0.99));
        ("bugs", Int bugs);
        ("bugs_per_100_images", Float (per_100 images bugs));
      ]
  in
  let json =
    Obj
      [
        ("schema", Str "pmdb-bench/v1");
        ("quick", Bool q);
        ("rounds", Int rounds);
        ("planted_rounds", Int (List.length planted));
        ("exhaustive_bugs", Int ex_bugs);
        ("exhaustive_images", Int ex_images);
        ("guided_bugs_at_25pct", Int guided_25);
        ("guided_images_at_25pct", Int guided_25_images);
        ("guided_hit_rate_at_25pct", Float hit_rate);
        ("sound", Bool (sound_curve && sound_cases));
        ("guided_complete_unbounded", Bool (guided_complete && complete_cases));
        ( "rows",
          List
            (row "crashexplore-exhaustive" ex_images ex_bugs ex_s ex_hist
            :: Stdlib.List.map
                 (fun (sname, pct, _, o, dt, hist) ->
                   row
                     (Printf.sprintf "crashexplore-%s-b%d" sname pct)
                     o.CE.result.CE.images_checked
                     (List.length (indexes_of o))
                     dt hist)
                 curve) );
        ("telemetry", Obs.Metrics.to_json guided_reg);
      ]
  in
  to_file "BENCH_pr10.json" json;
  Printf.printf "wrote BENCH_pr10.json (rounds=%d, quick=%b)\n" rounds q;
  flush stdout;
  if not (sound_curve && sound_cases) then begin
    Printf.eprintf "crashexplore: FAILED — a bounded strategy reported a failure exhaustive did not\n";
    exit 1
  end;
  if not (guided_complete && complete_cases) then begin
    Printf.eprintf "crashexplore: FAILED — unbounded guided missed part of the exhaustive failure set\n";
    exit 1
  end;
  if hit_rate < 0.9 then begin
    Printf.eprintf "crashexplore: FAILED — guided found %.0f%% of exhaustive's bugs at a 25%% image budget (need >= 90%%)\n"
      (100.0 *. hit_rate);
    exit 1
  end

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig2a", fig2a);
    ("fig2b", fig2b);
    ("fig2c", fig2c);
    ("fig8", fig8);
    ("table5", table5);
    ("table_sota", table_sota);
    ("table1", table1);
    ("table6", table6);
    ("fig10", fig10);
    ("fig11", fig11);
    ("newbugs", newbugs);
    ("ablation", ablation);
    ("faultinject", faultinject);
    ("bechamel", bechamel);
    ("report", report);
    ("streaming", streaming);
    ("sharding", sharding);
    ("serve", serve_soak);
    ("crashexplore", crashexplore);
  ]

let () =
  (* Frame publish stamps (and thus residency) must be wall clock, not
     the Sys.time default — the producer and consumer are on different
     domains. *)
  Obs.Clock.set Unix.gettimeofday;
  let args = List.tl (Array.to_list Sys.argv) in
  let names =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  (* Quick mode with no explicit experiment is the CI smoke run: just the
     machine-readable report at small sizes. *)
  let selected =
    match names with [] -> if !quick then [ "report" ] else List.map fst experiments | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          Printf.printf "\n===== %s =====\n" name;
          flush stdout;
          f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name (String.concat " " (List.map fst experiments));
          exit 1)
    selected
